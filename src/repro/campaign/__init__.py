"""Campaign orchestration: durable, sharded, resumable scenario sweeps.

The campaign layer turns thousands of scenario specs into one managed unit
of work:

* :mod:`repro.campaign.definition` — :class:`CampaignDefinition`, a frozen
  JSON-round-trippable description (base spec + parameter grids + explicit
  points + budget overrides);
* :mod:`repro.campaign.plan` — deterministic expansion into a
  content-hashed, sharded :class:`CampaignPlan` (also the single owner of
  the repository's grid-expansion semantics — in-memory
  ``ScenarioEngine.run_sweep`` delegates here);
* :mod:`repro.campaign.store` — :class:`CampaignStore`, append-only ndjson
  segments plus a SQLite index keyed by spec hash, crash-safe by
  construction;
* :mod:`repro.campaign.orchestrator` — :func:`run_campaign` /
  :class:`CampaignOrchestrator`, sharded execution with spec-hash-accounted
  resume and :class:`~repro.engine.cache.ResultCache` interop;
* :mod:`repro.campaign.query` — filter / group-by /
  :class:`~repro.analysis.montecarlo.MonteCarloSummary` roll-ups / CSV
  export over a store;
* :mod:`repro.campaign.suites` — the canonical paper suites registered as
  named campaigns;
* :mod:`repro.campaign.cli` — the ``python -m repro`` command line.

Attributes are resolved lazily (PEP 562): the engine's runner imports
:mod:`repro.campaign.plan` at module load, and the lazy package keeps that
edge acyclic.

Quickstart
----------
>>> from repro.campaign import CampaignDefinition, run_campaign
>>> from repro.engine import ScenarioSpec
>>> definition = CampaignDefinition(
...     name="gamma-sweep",
...     base=ScenarioSpec(name="base", n_trials=2),
...     grids=({"mtd.gamma_threshold": (0.1, 0.2, 0.3)},),
... )
>>> report = run_campaign(definition, "gamma.campaign")  # doctest: +SKIP
>>> report.complete                                      # doctest: +SKIP
True
"""

from __future__ import annotations

from typing import Any

#: Public name → defining submodule; resolved lazily on first access.
_EXPORTS = {
    "CAMPAIGN_SCHEMA_VERSION": "definition",
    "DEFAULT_SHARD_SIZE": "definition",
    "CampaignDefinition": "definition",
    "CampaignPlan": "plan",
    "Shard": "plan",
    "assign_shards": "plan",
    "expand_sweep": "plan",
    "plan_campaign": "plan",
    "plan_sweep": "plan",
    "CampaignStore": "store",
    "spec_field": "store",
    "GroupSummary": "query",
    "query_results": "query",
    "summarize_groups": "query",
    "export_csv": "query",
    "CampaignOrchestrator": "orchestrator",
    "CampaignReport": "orchestrator",
    "CampaignStatus": "orchestrator",
    "ShardStatus": "orchestrator",
    "run_campaign": "orchestrator",
    "available_campaigns": "suites",
    "campaign_from_suite": "suites",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
