"""Deterministic expansion of campaign definitions into sharded work plans.

This module owns the repository's *grid semantics*: :func:`expand_sweep` is
the single implementation of cartesian parameter-grid expansion, used both
by the campaign orchestrator and — through the delegating wrappers
:func:`repro.engine.spec.expand_grid` and
:meth:`repro.engine.runner.ScenarioEngine.run_sweep` — by every in-memory
sweep.  A :class:`CampaignPlan` is the expanded, content-hashed form of a
:class:`~repro.campaign.definition.CampaignDefinition`:

* ``points`` — every scenario of the campaign, in deterministic order
  (grid blocks row-major, then explicit points), with the definition's
  overrides applied;
* ``items`` — the deduplicated *work plan*: one entry per distinct spec
  content hash, in first-occurrence order (two grid blocks that overlap
  produce one unit of work, not two);
* ``shards`` — contiguous blocks of work items.  Sharding is a pure
  function of the plan, so the same plan hash always yields the same
  shard assignment — the invariant crash-safe resume relies on;
* ``plan_hash`` — SHA-256 over the ordered point hashes and the shard
  size, identifying the whole work plan.  Only *work* participates:
  relabelling a campaign (or its specs) keeps the plan hash stable, so
  annotation-only edits never invalidate a half-finished store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.campaign.definition import CAMPAIGN_SCHEMA_VERSION, CampaignDefinition
from repro.engine.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.results import ScenarioResult
    from repro.engine.runner import ScenarioEngine


def expand_sweep(
    base: ScenarioSpec,
    grid: Mapping[str, Sequence[Any]],
    name_format: str | None = None,
) -> list[ScenarioSpec]:
    """Expand a base spec into the cartesian product of parameter sweeps.

    The canonical grid expansion of the repository (moved here from
    ``repro.engine.spec`` so that in-memory sweeps and persistent campaigns
    share one implementation).

    Parameters
    ----------
    base:
        The spec every point starts from.
    grid:
        Mapping of dotted parameter paths (as accepted by
        :meth:`ScenarioSpec.with_updates`) to the values to sweep.
    name_format:
        Optional ``str.format`` template receiving the *leaf* parameter
        names as keys (e.g. ``"{case}-g{gamma_threshold}"``); by default the
        points are named ``base.name[k=v,...]``.

    Returns
    -------
    list of ScenarioSpec
        One spec per grid point, in row-major order of the given axes.
    """
    paths = list(grid)
    points: list[ScenarioSpec] = [base]
    for path in paths:
        points = [
            point.with_updates({path: value})
            for point in points
            for value in grid[path]
        ]
    named = []
    for spec in points:
        leaf_values = {}
        for path in paths:
            obj: Any = spec
            for part in path.split("."):
                obj = getattr(obj, part)
            leaf_values[path.split(".")[-1]] = obj
        if name_format is not None:
            name = name_format.format(**leaf_values)
        else:
            suffix = ",".join(f"{k}={v}" for k, v in leaf_values.items())
            name = f"{base.name}[{suffix}]" if suffix else base.name
        named.append(spec.with_updates(name=name))
    return named


@dataclass(frozen=True)
class Shard:
    """A contiguous block of the work plan, executed as one unit."""

    index: int
    spec_hashes: tuple[str, ...]

    @property
    def n_points(self) -> int:
        return len(self.spec_hashes)


@dataclass(frozen=True)
class CampaignPlan:
    """The expanded, content-hashed, sharded form of a campaign definition."""

    definition: CampaignDefinition
    points: tuple[ScenarioSpec, ...]
    point_hashes: tuple[str, ...]
    items: dict[str, ScenarioSpec]
    shards: tuple[Shard, ...]
    shard_index: dict[str, int]
    plan_hash: str

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Total scenario points (including duplicates across grid blocks)."""
        return len(self.points)

    @property
    def n_items(self) -> int:
        """Distinct units of work (deduplicated by spec content hash)."""
        return len(self.items)

    def spec_for(self, spec_hash: str) -> ScenarioSpec:
        """The scenario spec of one work item."""
        return self.items[spec_hash]

    def shard_of(self, spec_hash: str) -> int:
        """The shard a work item is assigned to."""
        return self.shard_index[spec_hash]

    # ------------------------------------------------------------------
    def run(
        self,
        engine: "ScenarioEngine",
        n_workers: int | None = None,
        use_cache: bool = True,
        batch_size: int | None = None,
    ) -> "list[ScenarioResult]":
        """Execute every point in plan order on the given engine.

        This is the execution path of in-memory sweeps
        (:meth:`ScenarioEngine.run_sweep` delegates here); persistent,
        sharded execution is the orchestrator's
        :func:`repro.campaign.orchestrator.run_campaign`.
        """
        return engine.run_suite(
            self.points, n_workers=n_workers, use_cache=use_cache, batch_size=batch_size
        )


def assign_shards(spec_hashes: Sequence[str], shard_size: int) -> tuple[Shard, ...]:
    """Partition work items into contiguous shards of ``shard_size`` points.

    Contiguity is deliberate: grid expansion keeps points that share a grid
    case adjacent, so contiguous shards maximise the per-process
    network/baseline memoisation of :mod:`repro.engine.trial`.  The
    assignment is a pure function of the ordered hashes and the shard size —
    the same plan hash always produces the same shards.
    """
    return tuple(
        Shard(index=i, spec_hashes=tuple(spec_hashes[start : start + shard_size]))
        for i, start in enumerate(range(0, len(spec_hashes), shard_size))
    )


def plan_campaign(definition: CampaignDefinition) -> CampaignPlan:
    """Expand a definition into its deterministic, content-hashed work plan."""
    # Overrides win over grid values: an override of a swept path collapses
    # that axis to the override value *before* expansion, so the generated
    # point names report the value that actually runs; the remaining
    # overrides apply to every point, as they do to explicit points.
    overrides = dict(definition.overrides)
    points: list[ScenarioSpec] = []
    for grid_block in definition.grids:
        block = {
            path: (overrides[path],) if path in overrides and values else values
            for path, values in grid_block
        }
        base = definition.base
        rest = {k: v for k, v in overrides.items() if k not in block}
        if rest:
            base = base.with_updates(rest)
        points.extend(expand_sweep(base, block, name_format=definition.name_format))
    if definition.base is not None and not definition.grids:
        points.append(
            definition.base.with_updates(overrides) if overrides else definition.base
        )
    for point in definition.points:
        points.append(point.with_updates(overrides) if overrides else point)

    point_hashes = tuple(point.content_hash() for point in points)
    items: dict[str, ScenarioSpec] = {}
    for point, spec_hash in zip(points, point_hashes):
        items.setdefault(spec_hash, point)

    # Only execution-relevant content: the ordered point hashes (which
    # already encode grids, overrides and explicit points) and the shard
    # layout.  Definition labels and spec labels stay out, so relabelling
    # never orphans a store.
    payload = {
        "schema_version": CAMPAIGN_SCHEMA_VERSION,
        "points": list(point_hashes),
        "shard_size": definition.shard_size,
    }
    plan_hash = hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()

    shards = assign_shards(tuple(items), definition.shard_size)
    return CampaignPlan(
        definition=definition,
        points=tuple(points),
        point_hashes=point_hashes,
        items=items,
        shards=shards,
        shard_index={h: s.index for s in shards for h in s.spec_hashes},
        plan_hash=plan_hash,
    )


def plan_sweep(
    base: ScenarioSpec,
    grid: Mapping[str, Sequence[Any]],
    name_format: str | None = None,
    shard_size: int | None = None,
) -> CampaignPlan:
    """Plan a one-grid campaign — the declarative form of ``run_sweep``.

    The returned plan's ``points`` are exactly what
    :func:`expand_sweep(base, grid, name_format)` yields, so running them
    in order is bit-identical to the historical in-memory sweep.
    """
    definition = CampaignDefinition(
        name=f"sweep-{base.name}",
        base=base,
        grids=(tuple((path, tuple(values)) for path, values in grid.items()),),
        name_format=name_format,
        **({} if shard_size is None else {"shard_size": shard_size}),
    )
    return plan_campaign(definition)


__all__ = [
    "Shard",
    "CampaignPlan",
    "assign_shards",
    "expand_sweep",
    "plan_campaign",
    "plan_sweep",
]
