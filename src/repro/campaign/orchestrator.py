"""Sharded, resumable execution of campaign plans.

:func:`run_campaign` is the write path of the campaign subsystem: it
expands a :class:`~repro.campaign.definition.CampaignDefinition` into its
deterministic work plan, subtracts what the store already holds (and what
an attached :class:`~repro.engine.cache.ResultCache` can replay without
executing), shards the remaining work across worker processes, and streams
every completed scenario into the store the moment it finishes.

Because work is accounted by spec content hash, re-invoking the same
campaign against the same store — after a crash, a ``kill -9``, or a
deliberate ``shard_limit`` checkpoint — executes exactly the scenarios
whose hashes are missing and nothing else.  ``resume`` is therefore not a
separate mechanism: it is :func:`run_campaign` with the definition reloaded
from the store's manifest.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.campaign.definition import CAMPAIGN_SCHEMA_VERSION, CampaignDefinition
from repro.campaign.plan import CampaignPlan, Shard, plan_campaign
from repro.campaign.store import CampaignStore
from repro.engine.cache import ResultCache
from repro.engine.results import ScenarioResult
from repro.engine.runner import ScenarioEngine
from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY, set_enabled
from repro.telemetry.env import environment_info
from repro.telemetry.export import write_prometheus
from repro.telemetry.progress import ProgressWriter, ShardProgress, set_current
from repro.telemetry.report import build_report, write_report
from repro.telemetry.spans import drain_spans, span as _span


@dataclass(frozen=True)
class ShardStatus:
    """Completion state of one shard of the plan."""

    index: int
    n_points: int
    n_completed: int

    @property
    def complete(self) -> bool:
        return self.n_completed >= self.n_points


@dataclass(frozen=True)
class CampaignStatus:
    """Completion state of a campaign against a store."""

    name: str
    plan_hash: str
    n_points: int
    n_items: int
    n_completed: int
    shards: tuple[ShardStatus, ...]

    @property
    def n_missing(self) -> int:
        return self.n_items - self.n_completed

    @property
    def complete(self) -> bool:
        return self.n_missing == 0


@dataclass(frozen=True)
class CampaignReport:
    """What one :func:`run_campaign` invocation did.

    ``executed``, ``from_cache`` and ``skipped`` partition the plan's work
    items by how this invocation satisfied them: ran the trials, replayed a
    :class:`ResultCache` entry into the store, or found the hash already in
    the store.  The spec-hash accounting is exact, which is what the resume
    tests assert against.
    """

    plan_hash: str
    n_points: int
    n_items: int
    executed: tuple[str, ...] = ()
    from_cache: tuple[str, ...] = ()
    skipped: tuple[str, ...] = ()
    shards_run: tuple[int, ...] = ()
    elapsed_seconds: float = 0.0
    #: The run's telemetry report (the ``telemetry.json`` payload), or
    #: ``None`` when telemetry was off.  Excluded from equality: two runs
    #: that did identical work compare equal regardless of timing.
    telemetry: dict | None = field(default=None, compare=False)

    @property
    def complete(self) -> bool:
        return len(self.executed) + len(self.from_cache) + len(self.skipped) == self.n_items


def _run_shard(
    shard_index: int,
    specs: Sequence[ScenarioSpec],
    batch_size: int | None,
    cache_dir: str | None,
    telemetry: bool = False,
    progress_dir: str | None = None,
) -> tuple[int, list[ScenarioResult], dict]:
    """Worker entry point: run one shard's scenarios serially in-process.

    Module-level and picklable so a ``ProcessPoolExecutor`` can ship it.
    The worker attaches the shared :class:`ResultCache` directory (if any)
    so freshly executed scenarios also land in the cache, and runs with
    ``n_workers=1`` — parallelism lives at the shard level.

    The ``telemetry`` flag travels explicitly (pool workers do not inherit
    the parent's runtime switch under every start method).  When set, the
    third element carries the worker's metrics delta for this shard
    (``"snapshot"``, a plain :meth:`~repro.telemetry.metrics.
    MetricsSnapshot.to_dict` payload) plus the shard's ``"wall_seconds"``;
    otherwise it is empty.  ``progress_dir`` (telemetry only) points at the
    store directory whose ``progress.ndjson`` this worker heartbeats into —
    concurrent shard workers interleave safely via atomic appends.
    """
    if not telemetry:
        engine = ScenarioEngine(cache=cache_dir, n_workers=1, batch_size=batch_size)
        return shard_index, [engine.run(spec) for spec in specs], {}
    set_enabled(True)
    before = _metrics.snapshot()
    start = time.perf_counter()
    engine = ScenarioEngine(cache=cache_dir, n_workers=1, batch_size=batch_size)
    writer = ProgressWriter(progress_dir) if progress_dir else None
    progress = (
        ShardProgress(writer, shard_index, len(specs)) if writer is not None else None
    )
    set_current(progress)
    try:
        with _span("campaign.shard", shard=shard_index, n_scenarios=len(specs)):
            results = []
            for spec in specs:
                results.append(engine.run(spec))
                if progress is not None:
                    progress.scenario_done(spec.n_trials)
        if progress is not None:
            progress.finish()
    finally:
        set_current(None)
        if writer is not None:
            writer.close()
    info = {
        "snapshot": _metrics.snapshot().subtract(before).to_dict(),
        "wall_seconds": time.perf_counter() - start,
    }
    return shard_index, results, info


class CampaignOrchestrator:
    """Executes campaign plans against a persistent store.

    Parameters
    ----------
    store:
        An existing :class:`CampaignStore` or a directory path to open one
        in.
    n_workers:
        Shard-level parallelism; 1 executes shards in the orchestrating
        process (streaming results scenario-by-scenario), larger values run
        shards on a process pool (streaming shard-by-shard).
    batch_size:
        Trial-batch size forwarded to the per-shard engines.
    cache:
        Optional :class:`ResultCache` (or directory) interop: scenarios
        already in the cache are ingested into the store instead of re-run,
        and executed scenarios are written back to the cache.
    """

    def __init__(
        self,
        store: CampaignStore | str | Path,
        n_workers: int = 1,
        batch_size: int | None = None,
        cache: ResultCache | str | Path | None = None,
    ) -> None:
        self._store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be at least 1, got {n_workers}")
        self._n_workers = int(n_workers)
        self._batch_size = batch_size
        if cache is None or isinstance(cache, ResultCache):
            self._cache = cache
        else:
            self._cache = ResultCache(cache)

    @property
    def store(self) -> CampaignStore:
        """The campaign store results stream into."""
        return self._store

    @property
    def cache(self) -> ResultCache | None:
        """The interop result cache, or ``None``."""
        return self._cache

    # ------------------------------------------------------------------
    def _check_manifest(self, plan: CampaignPlan) -> None:
        """Bind the store to the plan, rejecting a different campaign."""
        manifest = self._store.read_manifest()
        if manifest is not None and manifest.get("plan_hash") != plan.plan_hash:
            raise ConfigurationError(
                f"store {self._store.directory} holds campaign "
                f"{manifest.get('name', '?')!r} with plan hash "
                f"{manifest.get('plan_hash', '?')[:12]}…, which differs from "
                f"{plan.definition.name!r} ({plan.plan_hash[:12]}…); use a "
                "fresh store directory per campaign"
            )
        if manifest is None:
            self._store.write_manifest(
                {
                    "schema_version": CAMPAIGN_SCHEMA_VERSION,
                    "name": plan.definition.name,
                    "plan_hash": plan.plan_hash,
                    "definition": plan.definition.to_dict(),
                    "created_unix": time.time(),
                    # Environment stamp: which interpreter/libraries/machine
                    # first bound this store.  Diagnostic only — never read
                    # back by the orchestrator or the resume logic.
                    "environment": environment_info(),
                }
            )

    # ------------------------------------------------------------------
    def run(
        self,
        definition: CampaignDefinition,
        shard_limit: int | None = None,
    ) -> CampaignReport:
        """Execute every missing scenario of the campaign (or the first
        ``shard_limit`` incomplete shards of it).

        Work already present in the store is skipped; work the interop
        cache can replay is ingested without execution; the rest runs
        sharded, streaming into the store as it completes.
        """
        instrumented = _TELEMETRY.enabled
        start = time.perf_counter()
        before = _metrics.snapshot() if instrumented else None
        run_span = _span("campaign.run") if instrumented else None
        if run_span is not None:
            run_span.__enter__()
        plan = plan_campaign(definition)
        self._check_manifest(plan)
        # Live progress stream (observability only; see telemetry.progress).
        progress = ProgressWriter(self._store.directory) if instrumented else None

        completed = self._store.completed_hashes() & set(plan.items)
        skipped = tuple(h for h in plan.items if h in completed)

        from_cache: list[str] = []
        shard_wall: dict[int, float] = {}
        try:
            # ResultCache interop: replay cached scenarios into the store.
            if self._cache is not None:
                for spec_hash, spec in plan.items.items():
                    if spec_hash in completed:
                        continue
                    hit = self._cache.get(spec)
                    if hit is not None:
                        self._store.append(hit, shard=plan.shard_of(spec_hash))
                        completed.add(spec_hash)
                        from_cache.append(spec_hash)

            pending = [
                shard
                for shard in plan.shards
                if any(h not in completed for h in shard.spec_hashes)
            ]
            if shard_limit is not None:
                pending = pending[: max(0, int(shard_limit))]

            if progress is not None:
                progress.emit(
                    "run_start",
                    campaign=plan.definition.name,
                    plan_hash=plan.plan_hash,
                    n_items=plan.n_items,
                    completed=len(completed),
                    from_cache=len(from_cache),
                    pending_shards=[shard.index for shard in pending],
                    workers=self._n_workers,
                    heartbeat_interval=progress.min_interval,
                )
            executed = self._execute_shards(
                plan, pending, completed, shard_wall, progress
            )
        finally:
            # Hand the writer lock back the moment the run ends (even on
            # failure), so another orchestrator — this process or another —
            # can continue the campaign without waiting for this store to
            # be garbage-collected.
            self._store.release_writer()
            if run_span is not None:
                run_span.__exit__(None, None, None)

        elapsed = time.perf_counter() - start
        telemetry = None
        if instrumented:
            _metrics.counter("campaign.runs")
            _metrics.counter("campaign.scenarios_executed", len(executed))
            _metrics.counter("campaign.scenarios_from_cache", len(from_cache))
            _metrics.counter("campaign.scenarios_skipped", len(skipped))
            delta = _metrics.snapshot().subtract(before)
            trials_executed = sum(
                plan.spec_for(spec_hash).n_trials for spec_hash in executed
            )
            telemetry = build_report(
                delta,
                elapsed_seconds=elapsed,
                executed=len(executed),
                from_cache=len(from_cache),
                skipped=len(skipped),
                trials_executed=trials_executed,
                shard_wall_seconds=shard_wall,
                spans=drain_spans(),
                extra={"plan_hash": plan.plan_hash, "campaign": plan.definition.name},
            )
            write_report(self._store.directory, telemetry)
            # Same snapshot, standard exposition format (scrapeable/diffable).
            write_prometheus(self._store.directory, delta)

        if progress is not None:
            progress.emit(
                "run_done",
                executed=len(executed),
                from_cache=len(from_cache),
                skipped=len(skipped),
                elapsed_seconds=elapsed,
                complete=(
                    len(executed) + len(from_cache) + len(skipped) == plan.n_items
                ),
            )
            progress.close()

        return CampaignReport(
            plan_hash=plan.plan_hash,
            n_points=plan.n_points,
            n_items=plan.n_items,
            executed=tuple(executed),
            from_cache=tuple(from_cache),
            skipped=skipped,
            shards_run=tuple(shard.index for shard in pending),
            elapsed_seconds=elapsed,
            telemetry=telemetry,
        )

    def _execute_shards(
        self,
        plan: CampaignPlan,
        pending: Sequence[Shard],
        completed: set[str],
        shard_wall: dict[int, float],
        progress: ProgressWriter | None = None,
    ) -> list[str]:
        """Run the pending shards, streaming results into the store.

        ``shard_wall`` is filled in-place with per-shard wall-clock seconds
        when telemetry is enabled (worker-measured on the pool path, so the
        number excludes pickling/queueing overhead).
        """
        instrumented = _TELEMETRY.enabled
        cache_dir = None if self._cache is None else str(self._cache.directory)
        executed: list[str] = []
        if self._n_workers <= 1:
            # In-process execution streams scenario-by-scenario (the finest
            # crash granularity) through one engine shared by every shard.
            engine = ScenarioEngine(
                cache=cache_dir, n_workers=1, batch_size=self._batch_size
            )
            for shard in pending:
                shard_span = (
                    _span("campaign.shard", shard=shard.index)
                    if instrumented
                    else None
                )
                todo = [h for h in shard.spec_hashes if h not in completed]
                shard_progress = (
                    ShardProgress(progress, shard.index, len(todo))
                    if progress is not None
                    else None
                )
                set_current(shard_progress)
                shard_start = time.perf_counter()
                if shard_span is not None:
                    shard_span.__enter__()
                try:
                    for spec_hash in todo:
                        spec = plan.spec_for(spec_hash)
                        result = engine.run(spec)
                        self._store.append(result, shard=shard.index)
                        executed.append(spec_hash)
                        if shard_progress is not None:
                            shard_progress.scenario_done(spec.n_trials)
                finally:
                    set_current(None)
                    if shard_span is not None:
                        shard_span.__exit__(None, None, None)
                if shard_progress is not None:
                    shard_progress.finish()
                if instrumented:
                    shard_wall[shard.index] = time.perf_counter() - shard_start
            return executed

        tasks = {
            shard.index: [
                plan.spec_for(h) for h in shard.spec_hashes if h not in completed
            ]
            for shard in pending
        }
        progress_dir = str(self._store.directory) if progress is not None else None
        with ProcessPoolExecutor(max_workers=self._n_workers) as pool:
            futures = [
                pool.submit(
                    _run_shard,
                    index,
                    specs,
                    self._batch_size,
                    cache_dir,
                    instrumented,
                    progress_dir,
                )
                for index, specs in tasks.items()
                if specs
            ]
            for future in as_completed(futures):
                shard_index, results, info = future.result()
                # Merging the shard deltas is associative/commutative, so
                # the totals are independent of completion order even
                # though ``as_completed`` yields in a racy order.
                if info:
                    _metrics.merge_snapshot(info["snapshot"])
                    shard_wall[shard_index] = float(info["wall_seconds"])
                for result in results:
                    spec_hash = self._store.append(result, shard=shard_index)
                    executed.append(spec_hash)
        return executed

    # ------------------------------------------------------------------
    def status(self, definition: CampaignDefinition | None = None) -> CampaignStatus:
        """Completion state of the campaign against the store.

        With no explicit definition the store's manifest is used (the
        normal ``repro campaign status`` path).
        """
        plan = plan_campaign(self._resolve_definition(definition))
        completed = self._store.completed_hashes() & set(plan.items)
        shards = tuple(
            ShardStatus(
                index=shard.index,
                n_points=shard.n_points,
                n_completed=sum(1 for h in shard.spec_hashes if h in completed),
            )
            for shard in plan.shards
        )
        return CampaignStatus(
            name=plan.definition.name,
            plan_hash=plan.plan_hash,
            n_points=plan.n_points,
            n_items=plan.n_items,
            n_completed=len(completed),
            shards=shards,
        )

    def resume(self, shard_limit: int | None = None) -> CampaignReport:
        """Re-run the store's own campaign; only missing work executes."""
        return self.run(self._resolve_definition(None), shard_limit=shard_limit)

    def _resolve_definition(
        self, definition: CampaignDefinition | None
    ) -> CampaignDefinition:
        if definition is not None:
            return definition
        manifest = self._store.read_manifest()
        if manifest is None or "definition" not in manifest:
            raise ConfigurationError(
                f"store {self._store.directory} has no campaign manifest; "
                "pass a definition or run the campaign first"
            )
        return CampaignDefinition.from_dict(manifest["definition"])


def run_campaign(
    definition: CampaignDefinition,
    store: CampaignStore | str | Path,
    n_workers: int = 1,
    batch_size: int | None = None,
    cache: ResultCache | str | Path | None = None,
    shard_limit: int | None = None,
) -> CampaignReport:
    """One-shot convenience wrapper around :class:`CampaignOrchestrator`."""
    orchestrator = CampaignOrchestrator(
        store, n_workers=n_workers, batch_size=batch_size, cache=cache
    )
    return orchestrator.run(definition, shard_limit=shard_limit)


__all__ = [
    "CampaignOrchestrator",
    "CampaignReport",
    "CampaignStatus",
    "ShardStatus",
    "run_campaign",
]
