"""Declarative campaign definitions.

A :class:`CampaignDefinition` names a whole *family* of Monte-Carlo
scenarios the way a :class:`~repro.engine.spec.ScenarioSpec` names one
experiment: a base spec, one or more parameter grids swept over it, any
number of explicit extra points (how the canonical paper suites are wrapped
into campaigns), and campaign-wide overrides such as reduced trial budgets.
Definitions are frozen value objects that round-trip losslessly through
dict/JSON — a campaign can live in version control as a single ``.json``
file and be handed to ``python -m repro campaign run`` — and expose a
stable content hash over everything that affects the expanded work plan.

Labelling fields (``description``, ``tags``) are excluded from the hash,
mirroring the spec convention, so annotating a campaign never invalidates
its stored results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Sequence

from repro.engine.spec import ScenarioSpec
from repro.exceptions import ConfigurationError

#: Bumped whenever plan expansion or sharding semantics change in a way
#: that invalidates previously stored campaigns (participates in the
#: definition content hash and the plan hash).
CAMPAIGN_SCHEMA_VERSION = 1

#: Default number of scenario points per shard (see
#: :mod:`repro.campaign.plan`): small enough that an interrupted campaign
#: loses little work, large enough that per-shard dispatch overhead stays
#: negligible next to the trials themselves.
DEFAULT_SHARD_SIZE = 8

#: Definition fields that label a campaign without affecting its plan.
_LABEL_FIELDS = ("description", "tags")


def _freeze_grid(grid: Any) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    """Normalise one grid block to an ordered tuple of (path, values)."""
    if isinstance(grid, Mapping):
        items = list(grid.items())
    else:
        items = [(path, values) for path, values in grid]
    frozen = []
    for path, values in items:
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(
                f"grid values for {path!r} must be a sequence, got {values!r}"
            )
        # An empty axis is allowed and expands to zero points, matching the
        # historical expand_grid semantics for programmatically built grids.
        frozen.append((str(path), tuple(values)))
    return tuple(frozen)


@dataclass(frozen=True)
class CampaignDefinition:
    """Everything a campaign run depends on, as one frozen value object.

    Attributes
    ----------
    name:
        Campaign name; used for the store manifest and shard labels.
    base:
        The spec every grid point starts from (``None`` for pure
        point-list campaigns such as the wrapped paper suites).
    grids:
        Zero or more grid blocks, each mapping dotted spec paths to value
        sequences (as accepted by
        :meth:`~repro.engine.spec.ScenarioSpec.with_updates`).  Each block
        is expanded to the cartesian product of its axes over ``base``, in
        row-major order; blocks are concatenated in definition order.
    points:
        Explicit extra scenario points appended after the grid expansion
        (the paper suites are registered as campaigns this way).
    overrides:
        Dotted-path overrides applied to *every* expanded point after grid
        expansion (an override of a swept path wins over the grid and
        collapses that axis) — the standard way to scale trial budgets up
        or down (``{"attack.n_attacks": 40, "n_trials": 2}``) without
        editing the base spec or the suite.
    shard_size:
        Number of scenario points per shard of the work plan.
    name_format:
        Optional ``str.format`` template for grid-point names, receiving
        the leaf parameter names as keys (see
        :func:`repro.campaign.plan.expand_sweep`).
    description, tags:
        Free-form labels (excluded from the content hash).
    """

    name: str
    base: ScenarioSpec | None = None
    grids: tuple[tuple[tuple[str, tuple[Any, ...]], ...], ...] = ()
    points: tuple[ScenarioSpec, ...] = ()
    overrides: tuple[tuple[str, Any], ...] = ()
    shard_size: int = DEFAULT_SHARD_SIZE
    name_format: str | None = None
    description: str = ""
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must be a non-empty string")
        if self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be at least 1, got {self.shard_size}"
            )
        object.__setattr__(
            self, "grids", tuple(_freeze_grid(grid) for grid in self.grids)
        )
        if isinstance(self.overrides, Mapping):
            object.__setattr__(self, "overrides", tuple(self.overrides.items()))
        object.__setattr__(
            self, "overrides", tuple((str(k), v) for k, v in self.overrides)
        )
        object.__setattr__(self, "points", tuple(self.points))
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        if self.grids and self.base is None:
            raise ConfigurationError("a campaign with grids requires a base spec")
        if self.base is None and not self.points:
            raise ConfigurationError(
                "a campaign needs a base spec and/or explicit points"
            )

    # ------------------------------------------------------------------
    # dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (tuples become lists, JSON-safe)."""
        payload = asdict(self)
        payload["base"] = None if self.base is None else self.base.to_dict()
        payload["points"] = [point.to_dict() for point in self.points]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignDefinition":
        """Rebuild a definition from :meth:`to_dict` output (or parsed JSON)."""
        payload = dict(data)
        base = payload.get("base")
        if base is not None and not isinstance(base, ScenarioSpec):
            payload["base"] = ScenarioSpec.from_dict(base)
        payload["points"] = tuple(
            point if isinstance(point, ScenarioSpec) else ScenarioSpec.from_dict(point)
            for point in payload.get("points", ())
        )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown CampaignDefinition fields: {sorted(unknown)}"
            )
        return cls(**payload)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise the definition to canonical (sorted-key) JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignDefinition":
        """Rebuild a definition from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """SHA-256 over the plan-relevant content of the definition.

        Labelling fields are excluded; the schema version participates so
        that expansion-semantics changes invalidate stored campaigns.
        """
        payload = self.to_dict()
        for excluded in _LABEL_FIELDS:
            payload.pop(excluded, None)
        payload["schema_version"] = CAMPAIGN_SCHEMA_VERSION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_overrides(self, updates: Mapping[str, Any]) -> "CampaignDefinition":
        """A copy with extra dotted-path overrides appended (later wins)."""
        merged = dict(self.overrides)
        merged.update(updates)
        return CampaignDefinition(
            name=self.name,
            base=self.base,
            grids=self.grids,
            points=self.points,
            overrides=tuple(merged.items()),
            shard_size=self.shard_size,
            name_format=self.name_format,
            description=self.description,
            tags=self.tags,
        )


__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "DEFAULT_SHARD_SIZE",
    "CampaignDefinition",
]
