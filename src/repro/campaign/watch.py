"""Live campaign monitoring (``repro campaign watch``).

Tails a store's ``progress.ndjson`` event stream (see
:mod:`repro.telemetry.progress`) and turns it into a live view: per-shard
throughput, overall completion, an ETA from a sliding-window completion
rate, and stall detection.  Nothing here writes — watching is always safe
while an orchestrator (or several shard workers) are appending.

The analysis is a pure function of the event list
(:func:`analyze_progress` → :class:`WatchView`), which is what the tests
exercise; the CLI loop (:func:`run_watch`) only reads new bytes, re-runs
the analysis, and renders (text or JSON).  ``--serve-metrics`` starts a
plain-stdlib HTTP endpoint exposing the same view as OpenMetrics text
for a Prometheus scraper.

Stall detection
---------------
A shard is *stalled* when it is incomplete and its writer has been silent
for longer than ``stall_factor`` × the stream's median inter-event gap
(floored at the heartbeat interval, so a freshly started run is not
declared stalled before its first cadence is known).  When the silent
writer's pid no longer exists on this machine the shard is reported
``dead`` instead — the worker cannot recover on its own.

When the store has no progress stream (telemetry was off, or the run
predates it), the watcher falls back to the store's own completion state
(manifest + index), rendering a static view with no rate/stall data.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.telemetry.export import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from repro.telemetry.metrics import MetricsSnapshot, metric_key
from repro.telemetry.progress import read_progress, stream_size

#: Default seconds between watch refreshes.
DEFAULT_WATCH_INTERVAL = 2.0

#: Default stall threshold as a multiple of the median inter-event gap.
DEFAULT_STALL_FACTOR = 5.0

#: Sliding window (seconds) over which the completion rate / ETA is fit.
RATE_WINDOW_SECONDS = 60.0


@dataclass(frozen=True)
class ShardView:
    """Live state of one shard as seen through the event stream."""

    shard: int
    done: int = 0
    total: int = 0
    trials_done: int = 0
    trials_per_sec: float = 0.0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    last_ts: float = 0.0
    pid: int | None = None
    #: ``running`` | ``done`` | ``stalled`` | ``dead``
    state: str = "running"
    #: Last intra-scenario detail seen (scenario name, trial, or hour).
    detail: str = ""

    @property
    def complete(self) -> bool:
        return self.state == "done"


@dataclass(frozen=True)
class WatchView:
    """One rendered instant of a campaign's live progress."""

    campaign: str = ""
    plan_hash: str = ""
    n_items: int = 0
    #: Items satisfied before the watched run's shards (store + cache).
    baseline: int = 0
    shards: tuple[ShardView, ...] = ()
    #: Whether a ``run_done`` event closed the stream's last run.  A
    #: checkpointed (``--shard-limit``) invocation ends with the campaign
    #: still incomplete, so this is about the *run*, not the campaign.
    run_complete: bool = False
    #: The campaign-complete verdict carried by ``run_done`` (``None``
    #: while the run is still going).
    run_reported_complete: bool | None = None
    #: Final partition from ``run_done`` (executed/from_cache/skipped).
    partition: Mapping[str, int] | None = None
    #: Scenarios per second over the sliding window (``None`` = unknown).
    rate: float | None = None
    eta_seconds: float | None = None
    #: Seconds of stream history behind this view (0 with no events).
    span_seconds: float = 0.0
    n_events: int = 0
    #: ``"progress"`` when built from the event stream, ``"store"`` for
    #: the no-stream fallback.
    source: str = "progress"
    now: float = field(default=0.0, compare=False)

    @property
    def completed(self) -> int:
        if self.run_complete and self.partition is not None:
            return min(self.n_items, self.baseline + self.partition.get("executed", 0))
        return min(
            self.n_items, self.baseline + sum(shard.done for shard in self.shards)
        )

    @property
    def percent(self) -> float:
        if self.n_items <= 0:
            return 100.0 if self.run_complete else 0.0
        return 100.0 * self.completed / self.n_items

    @property
    def complete(self) -> bool:
        if self.run_reported_complete is not None:
            return self.run_reported_complete
        return self.n_items > 0 and self.completed >= self.n_items

    @property
    def stalled_shards(self) -> tuple[ShardView, ...]:
        return tuple(s for s in self.shards if s.state in ("stalled", "dead"))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``watch --json`` payload)."""
        return {
            "campaign": self.campaign,
            "plan_hash": self.plan_hash,
            "source": self.source,
            "n_items": self.n_items,
            "baseline": self.baseline,
            "completed": self.completed,
            "percent": self.percent,
            "complete": self.complete,
            "run_complete": self.run_complete,
            "partition": dict(self.partition) if self.partition else None,
            "rate_per_sec": self.rate,
            "eta_seconds": self.eta_seconds,
            "n_events": self.n_events,
            "stalled": [s.shard for s in self.stalled_shards],
            "shards": [
                {
                    "shard": s.shard,
                    "done": s.done,
                    "total": s.total,
                    "trials_done": s.trials_done,
                    "trials_per_sec": s.trials_per_sec,
                    "cache_hits": s.cache_hits,
                    "wall_seconds": s.wall_seconds,
                    "state": s.state,
                    "pid": s.pid,
                    "detail": s.detail,
                }
                for s in self.shards
            ],
        }


def _pid_alive(pid: int | None) -> bool:
    if not pid:
        return True  # unknown pid: assume alive, let the gap rule decide
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if not n:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _shard_detail(event: Mapping[str, Any]) -> str:
    if "hour" in event:
        return f"hour {event['hour']}"
    if "scenario" in event:
        detail = str(event["scenario"])
        if "trial" in event and "n_trials" in event:
            detail += f" trial {event['trial']}/{event['n_trials']}"
        return detail
    return ""


def analyze_progress(
    events: Sequence[Mapping[str, Any]],
    now: float | None = None,
    stall_factor: float = DEFAULT_STALL_FACTOR,
    pid_probe: Callable[[int | None], bool] = _pid_alive,
) -> WatchView:
    """Fold a progress event list into a :class:`WatchView`.

    Pure given its inputs: ``now`` and ``pid_probe`` are injectable so the
    stall logic is deterministic under test.  Only the stream's last run
    (from its final ``run_start``) is analyzed — earlier runs in the same
    file are a resumed campaign's history.
    """
    if now is None:
        now = time.time()

    # Locate the last run_start; everything before it is history.
    start_index = 0
    for index, event in enumerate(events):
        if event.get("kind") == "run_start":
            start_index = index
    run = events[start_index:] if events else []

    campaign = ""
    plan_hash = ""
    n_items = 0
    baseline = 0
    run_complete = False
    run_reported_complete: bool | None = None
    partition: dict[str, int] | None = None
    shard_events: dict[int, dict[str, Any]] = {}
    shard_last: dict[int, float] = {}
    shard_pid: dict[int, int | None] = {}
    shard_done_flag: dict[int, bool] = {}
    shard_detail: dict[int, str] = {}
    completion_samples: list[tuple[float, int]] = []
    timestamps: list[float] = []
    min_interval = 0.0

    for event in run:
        kind = event.get("kind")
        ts = float(event.get("ts", 0.0))
        timestamps.append(ts)
        if kind == "run_start":
            campaign = str(event.get("campaign", ""))
            plan_hash = str(event.get("plan_hash", ""))
            n_items = int(event.get("n_items", 0))
            baseline = int(event.get("completed", 0))
            min_interval = float(event.get("heartbeat_interval", 0.0))
            continue
        if kind == "run_done":
            run_complete = True
            run_reported_complete = (
                bool(event["complete"]) if "complete" in event else None
            )
            partition = {
                key: int(event.get(key, 0))
                for key in ("executed", "from_cache", "skipped")
            }
            continue
        shard = event.get("shard")
        if shard is None:
            continue
        shard = int(shard)
        previous = shard_events.get(shard, {})
        merged = dict(previous)
        merged.update(event)
        shard_events[shard] = merged
        shard_last[shard] = ts
        shard_pid[shard] = event.get("pid", shard_pid.get(shard))
        detail = _shard_detail(event)
        if detail:
            shard_detail[shard] = detail
        if kind == "shard_done":
            shard_done_flag[shard] = True
        total_done = baseline + sum(
            int(state.get("done", 0)) for state in shard_events.values()
        )
        completion_samples.append((ts, total_done))

    # Sliding-window completion rate → ETA.
    rate: float | None = None
    eta: float | None = None
    if len(completion_samples) >= 2:
        horizon = completion_samples[-1][0] - RATE_WINDOW_SECONDS
        window = [s for s in completion_samples if s[0] >= horizon]
        if len(window) < 2:
            window = completion_samples[-2:]
        dt = window[-1][0] - window[0][0]
        dn = window[-1][1] - window[0][1]
        if dt > 0 and dn > 0:
            rate = dn / dt
            remaining = max(0, n_items - completion_samples[-1][1])
            eta = remaining / rate

    # Stall threshold: stall_factor × median inter-event gap, floored at
    # the heartbeat cadence (a quiet-but-healthy run ticks at least that
    # often) and at one second.
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:]) if b > a]
    median_gap = _median(gaps)
    threshold = stall_factor * max(median_gap, min_interval, 1.0)

    shards: list[ShardView] = []
    for shard in sorted(shard_events):
        state = shard_events[shard]
        last_ts = shard_last[shard]
        pid = shard_pid.get(shard)
        if shard_done_flag.get(shard) or run_complete:
            shard_state = "done"
        elif not pid_probe(pid):
            shard_state = "dead"
        elif (now - last_ts) > threshold:
            shard_state = "stalled"
        else:
            shard_state = "running"
        shards.append(
            ShardView(
                shard=shard,
                done=int(state.get("done", 0)),
                total=int(state.get("total", 0)),
                trials_done=int(state.get("trials_done", 0)),
                trials_per_sec=float(state.get("trials_per_sec", 0.0)),
                cache_hits=int(state.get("cache_hits", 0)),
                wall_seconds=float(state.get("wall_seconds", 0.0)),
                last_ts=last_ts,
                pid=pid,
                state=shard_state,
                detail=shard_detail.get(shard, ""),
            )
        )

    span_seconds = (timestamps[-1] - timestamps[0]) if len(timestamps) > 1 else 0.0
    return WatchView(
        campaign=campaign,
        plan_hash=plan_hash,
        n_items=n_items,
        baseline=baseline,
        shards=tuple(shards),
        run_complete=run_complete,
        run_reported_complete=run_reported_complete,
        partition=partition,
        rate=rate,
        eta_seconds=eta,
        span_seconds=span_seconds,
        n_events=len(run),
        source="progress",
        now=now,
    )


def store_fallback_view(store_dir: str | Path, now: float | None = None) -> WatchView:
    """Static completion view from the store itself (no progress stream)."""
    from repro.campaign.orchestrator import CampaignOrchestrator
    from repro.campaign.store import CampaignStore

    status = CampaignOrchestrator(CampaignStore(store_dir, create=False)).status()
    shards = tuple(
        ShardView(
            shard=shard.index,
            done=shard.n_completed,
            total=shard.n_points,
            state="done" if shard.complete else "running",
        )
        for shard in status.shards
    )
    return WatchView(
        campaign=status.name,
        plan_hash=status.plan_hash,
        n_items=status.n_items,
        baseline=0,
        shards=shards,
        run_complete=status.complete,
        run_reported_complete=status.complete,
        source="store",
        now=time.time() if now is None else now,
    )


def load_view(
    store_dir: str | Path,
    now: float | None = None,
    stall_factor: float = DEFAULT_STALL_FACTOR,
) -> WatchView:
    """The current view of a store: event stream, or store fallback."""
    events = read_progress(store_dir)
    if events:
        return analyze_progress(events, now=now, stall_factor=stall_factor)
    return store_fallback_view(store_dir, now=now)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _format_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rest:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"


def _progress_bar(percent: float, width: int = 24) -> str:
    filled = int(round(width * min(100.0, max(0.0, percent)) / 100.0))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_view(view: WatchView) -> str:
    """Multi-line text rendering of one watch instant."""
    lines: list[str] = []
    title = view.campaign or "campaign"
    plan = f" (plan {view.plan_hash[:12]}…)" if view.plan_hash else ""
    source = " [store fallback — no progress stream]" if view.source == "store" else ""
    lines.append(f"watching {title!s}{plan}{source}")
    rate = f"{view.rate:.2f}/s" if view.rate is not None else "--"
    lines.append(
        f"  {_progress_bar(view.percent)} {view.completed}/{view.n_items} "
        f"scenarios ({view.percent:.1f}%)  rate {rate}  "
        f"eta {_format_eta(view.eta_seconds)}"
    )
    if view.baseline:
        lines.append(f"  baseline: {view.baseline} already satisfied "
                     "(stored or cache-replayed)")
    for shard in view.shards:
        tps = f"{shard.trials_per_sec:.1f} trials/s" if shard.trials_per_sec else ""
        detail = f"  {shard.detail}" if shard.detail and shard.state == "running" else ""
        flags = {"stalled": "  ** STALLED **", "dead": "  ** WORKER DEAD **"}.get(
            shard.state, ""
        )
        lines.append(
            f"  shard {shard.shard:>3}: {shard.done}/{shard.total} "
            f"[{shard.state}] {tps}{detail}{flags}"
        )
    if view.run_complete and view.partition is not None:
        lines.append(
            f"  run complete: executed {view.partition.get('executed', 0)}, "
            f"from cache {view.partition.get('from_cache', 0)}, "
            f"skipped {view.partition.get('skipped', 0)}"
        )
    elif view.complete:
        lines.append("  all scenarios stored")
    stalled = view.stalled_shards
    if stalled:
        lines.append(
            "  stall check: "
            + ", ".join(f"shard {s.shard} is {s.state}" for s in stalled)
        )
    return "\n".join(lines)


def view_metrics(view: WatchView) -> MetricsSnapshot:
    """The view as gauges, for the ``--serve-metrics`` scrape endpoint."""
    gauges: dict[str, float] = {
        metric_key("watch.items_total", {}): float(view.n_items),
        metric_key("watch.items_completed", {}): float(view.completed),
        metric_key("watch.percent", {}): view.percent,
        metric_key("watch.complete", {}): 1.0 if view.complete else 0.0,
        metric_key("watch.stalled_shards", {}): float(len(view.stalled_shards)),
    }
    if view.rate is not None:
        gauges[metric_key("watch.rate_per_second", {})] = view.rate
    if view.eta_seconds is not None:
        gauges[metric_key("watch.eta_seconds", {})] = view.eta_seconds
    for shard in view.shards:
        labels = {"shard": str(shard.shard)}
        gauges[metric_key("watch.shard.done", labels)] = float(shard.done)
        gauges[metric_key("watch.shard.total", labels)] = float(shard.total)
        gauges[metric_key("watch.shard.trials_per_second", labels)] = (
            shard.trials_per_sec
        )
        gauges[metric_key("watch.shard.stalled", labels)] = (
            1.0 if shard.state in ("stalled", "dead") else 0.0
        )
    return MetricsSnapshot(counters={}, gauges=gauges, histograms={})


# ----------------------------------------------------------------------
# scrape endpoint
# ----------------------------------------------------------------------
class MetricsServer:
    """Plain-stdlib HTTP endpoint serving a live OpenMetrics exposition.

    ``GET /metrics`` renders whatever snapshot ``supplier`` returns at
    scrape time; ``GET /healthz`` answers ``ok``.  Runs on a daemon
    thread; bind with ``port=0`` to pick a free port (tests).
    """

    def __init__(
        self,
        supplier: Callable[[], MetricsSnapshot],
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                if self.path.split("?")[0] in ("/metrics", "/"):
                    try:
                        body = render_openmetrics(server._supplier()).encode("utf-8")
                    except Exception as error:  # surface, don't kill the thread
                        self.send_error(500, f"metrics rendering failed: {error}")
                        return
                    self.send_response(200)
                    self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/healthz":
                    body = b"ok\n"
                    self.send_response(200)
                    self.send_header("Content-Type", "text/plain")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_error(404)

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

        self._supplier = supplier
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._httpd.server_address[1]

    def close(self) -> None:
        """Stop serving and release the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# CLI loop
# ----------------------------------------------------------------------
def run_watch(
    store_dir: str | Path,
    once: bool = False,
    json_output: bool = False,
    interval: float = DEFAULT_WATCH_INTERVAL,
    stall_factor: float = DEFAULT_STALL_FACTOR,
    serve_port: int | None = None,
    out=None,
) -> int:
    """The ``repro campaign watch`` command.

    Re-reads the stream when it grows (cheap ``stat`` poll between
    renders), renders every ``interval`` seconds, and exits 0 once the
    watched run completes (immediately with ``--once``).  Returns 1 from
    ``--once`` when the run is incomplete or any shard looks stalled.
    """
    stream = sys.stdout if out is None else out
    directory = Path(store_dir)
    if not directory.is_dir():
        raise ConfigurationError(f"no campaign store at {directory}")

    server: MetricsServer | None = None
    if serve_port is not None:
        # The scrape endpoint recomputes the view per scrape, so it stays
        # live even between the watcher's own renders.
        server = MetricsServer(
            lambda: view_metrics(load_view(directory, stall_factor=stall_factor)),
            port=serve_port,
        )
        print(
            f"serving OpenMetrics on http://127.0.0.1:{server.port}/metrics",
            file=stream,
        )

    try:
        last_size = -1
        view = load_view(directory, stall_factor=stall_factor)
        while True:
            if json_output:
                print(json.dumps(view.to_dict(), sort_keys=True), file=stream)
            else:
                print(render_view(view), file=stream)
            if once:
                return 0 if view.complete and not view.stalled_shards else 1
            if view.run_complete:
                return 0
            if hasattr(stream, "flush"):
                stream.flush()
            time.sleep(max(0.1, float(interval)))
            size = stream_size(directory)
            if size != last_size or view.source == "store":
                last_size = size
                view = load_view(directory, stall_factor=stall_factor)
            else:
                # No new bytes: re-analyze with a fresh clock so stall
                # states can flip without new events.
                events = read_progress(directory)
                view = (
                    analyze_progress(events, stall_factor=stall_factor)
                    if events
                    else store_fallback_view(directory)
                )
    except KeyboardInterrupt:
        return 0
    finally:
        if server is not None:
            server.close()


__all__ = [
    "DEFAULT_WATCH_INTERVAL",
    "DEFAULT_STALL_FACTOR",
    "RATE_WINDOW_SECONDS",
    "ShardView",
    "WatchView",
    "analyze_progress",
    "store_fallback_view",
    "load_view",
    "render_view",
    "view_metrics",
    "MetricsServer",
    "run_watch",
]
