"""The ``python -m repro`` command line.

One-command reproducible campaigns::

    python -m repro suites list
    python -m repro suites run tables --store tables.campaign --trials 2
    python -m repro campaign run fig7_campaign.json --store fig7.campaign
    python -m repro campaign status --store fig7.campaign
    python -m repro campaign resume --store fig7.campaign
    python -m repro campaign query --store fig7.campaign \
        --metric "eta(0.9)" --group-by mtd.max_relative_change --csv out.csv

``campaign run`` takes a JSON campaign definition
(:meth:`~repro.campaign.definition.CampaignDefinition.to_json`); budget
knobs (``--trials``, ``--attacks``, arbitrary ``--set path=value``) layer
overrides on top of it.  ``resume`` reloads the definition from the store's
manifest, so an interrupted campaign continues with exactly the plan it
started with — only missing shards execute, verified by spec hash.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.lint.cli import add_lint_parser
from repro.analysis.reporting import format_table
from repro.campaign.definition import CampaignDefinition
from repro.campaign.orchestrator import CampaignOrchestrator, CampaignReport
from repro.campaign.query import export_csv, query_results, summarize_groups
from repro.campaign.store import CampaignStore
from repro.campaign.suites import available_campaigns, campaign_from_suite
from repro.exceptions import ReproError, TelemetryError
from repro.telemetry import (
    configure_logging,
    enable as enable_telemetry,
    format_environment,
    format_report,
    load_report,
    log_event,
    telemetry_path,
)
from repro.telemetry.export import (
    metrics_prom_path,
    render_openmetrics,
    render_otlp_json,
)


def _parse_value(text: str) -> Any:
    """Parse a CLI value: JSON when possible, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignments(pairs: Sequence[str], option: str) -> dict[str, Any]:
    """Parse repeated ``path=value`` options into an override mapping."""
    parsed: dict[str, Any] = {}
    for pair in pairs:
        path, sep, value = pair.partition("=")
        if not sep or not path:
            raise ReproError(f"{option} expects path=value, got {pair!r}")
        parsed[path] = _parse_value(value)
    return parsed


def _budget_overrides(args: argparse.Namespace) -> dict[str, Any]:
    overrides = _parse_assignments(args.set or (), "--set")
    if args.trials is not None:
        overrides.setdefault("n_trials", args.trials)
    if args.attacks is not None:
        overrides.setdefault("attack.n_attacks", args.attacks)
    return overrides


def _orchestrator(args: argparse.Namespace, create: bool = True) -> CampaignOrchestrator:
    return CampaignOrchestrator(
        CampaignStore(args.store, create=create),
        n_workers=args.workers,
        batch_size=args.batch_size,
        cache=args.cache,
    )


def _print_report(report: CampaignReport, store: str) -> None:
    print(
        f"campaign plan {report.plan_hash[:12]}…: {report.n_points} points, "
        f"{report.n_items} distinct scenarios"
    )
    print(
        f"  executed {len(report.executed)}, replayed {len(report.from_cache)} "
        f"from cache, skipped {len(report.skipped)} already stored "
        f"({len(report.shards_run)} shard(s), {report.elapsed_seconds:.2f}s)"
    )
    state = "complete" if report.complete else "incomplete — run resume to continue"
    print(f"  store {store}: {state}")
    if report.telemetry is not None:
        print(f"  telemetry report: {telemetry_path(store)}")
        print(f"  metrics exposition: {metrics_prom_path(store)}")
    log_event(
        "campaign.run.finished",
        store=str(store),
        plan_hash=report.plan_hash,
        executed=len(report.executed),
        from_cache=len(report.from_cache),
        skipped=len(report.skipped),
        elapsed_seconds=report.elapsed_seconds,
        complete=report.complete,
    )


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------
def _cmd_campaign_run(args: argparse.Namespace) -> int:
    definition = CampaignDefinition.from_json(Path(args.definition).read_text())
    overrides = _budget_overrides(args)
    if overrides:
        definition = definition.with_overrides(overrides)
    if args.shard_size is not None:
        definition = dataclasses.replace(definition, shard_size=args.shard_size)
    report = _orchestrator(args).run(definition, shard_limit=args.shard_limit)
    _print_report(report, args.store)
    return 0 if report.complete or args.shard_limit is not None else 1


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    report = _orchestrator(args, create=False).resume(shard_limit=args.shard_limit)
    _print_report(report, args.store)
    return 0 if report.complete or args.shard_limit is not None else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    status = CampaignOrchestrator(CampaignStore(args.store, create=False)).status()
    print(
        f"campaign {status.name!r} (plan {status.plan_hash[:12]}…): "
        f"{status.n_completed}/{status.n_items} scenarios complete, "
        f"{status.n_missing} missing"
    )
    rows = [
        [shard.index, shard.n_points, shard.n_completed,
         "done" if shard.complete else "missing"]
        for shard in status.shards
    ]
    print(format_table(["shard", "points", "completed", "state"], rows))
    if getattr(args, "telemetry", False):
        try:
            report = load_report(args.store)
        except TelemetryError as error:
            print(str(error))
        else:
            print()
            print(format_report(report))
    return 0 if status.complete else 1


def _cmd_campaign_query(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store, create=False)
    where = _parse_assignments(args.where or (), "--where")
    results = query_results(store, where=where or None, tags=args.tag or None)
    if not results:
        print("no stored scenarios match the query")
        return 1
    group_by = [p for p in (args.group_by or "").split(",") if p]
    groups = summarize_groups(results, metric=args.metric, group_by=group_by)
    key_columns = group_by if group_by else ["scenario"]
    rows = [
        list(group.key)
        + [group.n_scenarios, group.summary.n_trials,
           f"{group.summary.mean:.6g}", f"{group.summary.std:.6g}",
           f"{group.summary.confidence_halfwidth:.6g}",
           f"{group.summary.median:.6g}"]
        for group in groups
    ]
    metric_label = args.metric or "spec metric"
    print(
        format_table(
            key_columns + ["scenarios", "trials", "mean", "std", "ci95", "median"],
            rows,
            title=f"{len(results)} scenario(s); metric: {metric_label}",
        )
    )
    if args.csv:
        fields = [p for p in (args.fields or args.group_by or "").split(",") if p]
        path = export_csv(args.csv, results, metric=args.metric, fields=fields)
        print(f"wrote {path}")
    return 0


def _cmd_cases_list(args: argparse.Namespace) -> int:
    from repro.grid.cases.registry import available_cases
    from repro.grid.matpower import bundled_matpower_cases

    print("registered cases (usable as GridSpec.case / --set grid.case=...):")
    for name in available_cases():
        print(f"  {name}")
    bundled = bundled_matpower_cases()
    if bundled:
        print("bundled MATPOWER case files (file-referenced, e.g. grid.case=case30.m):")
        for name in bundled:
            print(f"  {name}")
    print('any other MATPOWER file loads by path: grid.case="path/to/case.m"')
    return 0


def _cmd_cases_info(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.grid.cases.registry import load_case

    network = load_case(args.name)
    arrays = network.arrays
    rates = arrays.branch_rate_mw
    finite = rates[np.isfinite(rates)]
    print(f"case {args.name!r} (network name: {network.name or 'unnamed'!r})")
    rows = [
        ["buses", network.n_buses],
        ["branches", network.n_branches],
        ["generators", network.n_generators],
        ["measurements (2L+N)", network.n_measurements],
        ["slack bus", network.slack_bus],
        ["base MVA", f"{network.base_mva:g}"],
        ["total load (MW)", f"{network.total_load_mw():.1f}"],
        ["generation capacity (MW)", f"{network.total_generation_capacity_mw():.1f}"],
        ["D-FACTS branches", len(network.dfacts_branches)],
    ]
    print(format_table(["property", "value"], rows))
    if finite.size:
        print(
            f"line ratings: {finite.size}/{rates.size} limited, "
            f"min {finite.min():g} MW, median {float(np.median(finite)):g} MW, "
            f"max {finite.max():g} MW"
        )
    else:
        print(f"line ratings: all {rates.size} branches unlimited")
    if network.dfacts_branches:
        print(f"D-FACTS on branches (0-based): {list(network.dfacts_branches)}")
    return 0


def _cmd_suites_list(args: argparse.Namespace) -> int:
    print("registered campaigns (scenario suites):")
    for name in available_campaigns():
        definition = campaign_from_suite(name)
        print(f"  {name:<12} {len(definition.points)} scenario point(s)")
    return 0


def _cmd_suites_run(args: argparse.Namespace) -> int:
    definition = campaign_from_suite(
        args.name, overrides=_budget_overrides(args), shard_size=args.shard_size
    )
    report = _orchestrator(args).run(definition, shard_limit=args.shard_limit)
    _print_report(report, args.store)
    return 0 if report.complete or args.shard_limit is not None else 1


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.campaign.watch import run_watch

    return run_watch(
        args.store,
        once=args.once,
        json_output=args.json,
        interval=args.interval,
        stall_factor=args.stall_factor,
        serve_port=args.serve_metrics,
    )


def _cmd_telemetry_show(args: argparse.Namespace) -> int:
    try:
        report = load_report(args.store)
    except TelemetryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    fmt = getattr(args, "format", "text")
    if fmt == "prom":
        sys.stdout.write(render_openmetrics(report.get("metrics", {})))
    elif fmt == "otlp":
        print(render_otlp_json(report))
    else:
        print(format_report(report))
    return 0


def _cmd_telemetry_env(args: argparse.Namespace) -> int:
    print(format_environment())
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", required=True, help="campaign store directory")
    parser.add_argument("--workers", type=int, default=1,
                        help="shard-level worker processes (default: 1)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="trial-batch size forwarded to the engines")
    parser.add_argument("--cache", default=None,
                        help="ResultCache directory to interop with")
    parser.add_argument("--shard-limit", type=int, default=None,
                        help="run at most this many incomplete shards (checkpointing)")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect metrics/spans and write telemetry.json "
                             "next to the store manifest (results unchanged)")


def _add_budget_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trials", type=int, default=None,
                        help="override n_trials of every scenario point")
    parser.add_argument("--attacks", type=int, default=None,
                        help="override attack.n_attacks of every scenario point")
    parser.add_argument("--set", action="append", metavar="PATH=VALUE",
                        help="extra dotted-path override, any depth "
                             "(repeatable), e.g. operation.profile.hours=6")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="scenario points per shard")


def _logging_parent() -> argparse.ArgumentParser:
    """Logging flags, usable before *or* after the subcommand.

    The root parser owns the real defaults; this parent (attached to every
    leaf subparser) uses ``SUPPRESS`` defaults so a subparser that never saw
    the flag doesn't clobber a value the root parse already set.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--log-level", default=argparse.SUPPRESS,
                        choices=("debug", "info", "warning", "error"),
                        help="emit structured run logs at this level")
    parent.add_argument("--log-json", action="store_true",
                        default=argparse.SUPPRESS,
                        help="structured logs as JSON lines (implies "
                             "--log-level info unless set)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Campaign orchestration for the DSN'18 MTD reproduction.",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="emit structured run logs at this level")
    parser.add_argument("--log-json", action="store_true",
                        help="structured logs as JSON lines (implies --log-level info "
                             "unless set)")
    logging_parent = _logging_parent()
    commands = parser.add_subparsers(dest="command", required=True)

    campaign = commands.add_parser("campaign", help="run/inspect persistent campaigns")
    actions = campaign.add_subparsers(dest="action", required=True)

    run = actions.add_parser("run", parents=[logging_parent],
                             help="run a campaign definition (JSON file)")
    run.add_argument("definition", help="path to a CampaignDefinition JSON file")
    _add_execution_options(run)
    _add_budget_options(run)
    run.set_defaults(handler=_cmd_campaign_run)

    resume = actions.add_parser("resume", parents=[logging_parent],
                                help="continue the store's campaign")
    _add_execution_options(resume)
    resume.set_defaults(handler=_cmd_campaign_resume)

    status = actions.add_parser("status", parents=[logging_parent],
                                help="completion state of a store")
    status.add_argument("--store", required=True, help="campaign store directory")
    status.add_argument("--telemetry", action="store_true",
                        help="also render the store's telemetry.json run report")
    status.set_defaults(handler=_cmd_campaign_status)

    watch = actions.add_parser(
        "watch", parents=[logging_parent],
        help="tail a running campaign's live progress stream",
    )
    watch.add_argument("--store", required=True, help="campaign store directory")
    watch.add_argument("--once", action="store_true",
                       help="render one snapshot and exit (0 = complete, no stalls)")
    watch.add_argument("--json", action="store_true",
                       help="machine-readable snapshots (one JSON object per render)")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between renders (default: 2)")
    watch.add_argument("--stall-factor", type=float, default=5.0,
                       help="flag a shard as stalled after this multiple of the "
                            "median inter-event gap without a heartbeat (default: 5)")
    watch.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                       help="also serve the live view as OpenMetrics on "
                            "http://127.0.0.1:PORT/metrics (0 picks a free port)")
    watch.set_defaults(handler=_cmd_campaign_watch)

    query = actions.add_parser("query", parents=[logging_parent],
                               help="filter/aggregate stored results")
    query.add_argument("--store", required=True, help="campaign store directory")
    query.add_argument("--where", action="append", metavar="PATH=VALUE",
                       help="dotted spec-field equality filter (repeatable)")
    query.add_argument("--tag", action="append", help="require a scenario tag (repeatable)")
    query.add_argument("--metric", default=None,
                       help="metric to summarise (default: each spec's headline metric)")
    query.add_argument("--group-by", default=None, metavar="PATH[,PATH...]",
                       help="pool trials by dotted spec field(s)")
    query.add_argument("--csv", default=None, help="also export per-scenario rows to CSV")
    query.add_argument("--fields", default=None, metavar="PATH[,PATH...]",
                       help="extra spec fields for the CSV export")
    query.set_defaults(handler=_cmd_campaign_query)

    cases = commands.add_parser("cases", help="inspect available grid cases")
    case_actions = cases.add_subparsers(dest="action", required=True)

    cases_list = case_actions.add_parser(
        "list", parents=[logging_parent],
        help="list registered cases and bundled MATPOWER files",
    )
    cases_list.set_defaults(handler=_cmd_cases_list)

    cases_info = case_actions.add_parser(
        "info", parents=[logging_parent],
        help="bus/branch/generator counts, slack, ratings of one case",
    )
    cases_info.add_argument(
        "name", help="registry name (e.g. ieee14) or MATPOWER file (e.g. case30.m)"
    )
    cases_info.set_defaults(handler=_cmd_cases_info)

    suites = commands.add_parser("suites", help="canonical suites as campaigns")
    suite_actions = suites.add_subparsers(dest="action", required=True)

    suites_list = suite_actions.add_parser(
        "list", parents=[logging_parent], help="list registered campaigns"
    )
    suites_list.set_defaults(handler=_cmd_suites_list)

    suites_run = suite_actions.add_parser(
        "run", parents=[logging_parent], help="run a suite as a campaign"
    )
    suites_run.add_argument("name", help="suite name (see: repro suites list)")
    _add_execution_options(suites_run)
    _add_budget_options(suites_run)
    suites_run.set_defaults(handler=_cmd_suites_run)

    telemetry = commands.add_parser(
        "telemetry", help="inspect run reports and the execution environment"
    )
    telemetry_actions = telemetry.add_subparsers(dest="action", required=True)

    telemetry_show = telemetry_actions.add_parser(
        "show", parents=[logging_parent],
        help="render a store's telemetry.json run report",
    )
    telemetry_show.add_argument("store", help="campaign store directory")
    telemetry_show.add_argument(
        "--format", choices=("text", "prom", "otlp"), default="text",
        help="rendering: human text, Prometheus/OpenMetrics exposition, "
             "or OTLP/JSON spans (default: text)",
    )
    telemetry_show.set_defaults(handler=_cmd_telemetry_show)

    telemetry_env = telemetry_actions.add_parser(
        "env", parents=[logging_parent],
        help="interpreter/library versions, machine shape, config",
    )
    telemetry_env.set_defaults(handler=_cmd_telemetry_env)

    add_lint_parser(commands, [logging_parent])

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.log_level is not None or args.log_json:
        configure_logging(args.log_level or "info", json_output=args.log_json)
    if getattr(args, "telemetry", False) and args.handler is not _cmd_campaign_status:
        enable_telemetry()
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = ["build_parser", "main"]
