"""The canonical scenario suites, registered as named campaigns.

Every suite of :mod:`repro.engine.scenarios` — the paper's Figs. 6–11 and
Tables I–III plus the synthetic ``scale`` suite — is available as a
:class:`~repro.campaign.definition.CampaignDefinition`, so one CLI command
(``python -m repro suites run fig8 --store fig8.campaign``) turns a paper
figure into a durable, resumable, queryable campaign.

This includes the time-series operation suites (``fig10``, ``fig11``,
``daily-ops``): their points are ordinary scenario specs whose trials are
operated hours, so sharding, the crash-safe store, resume and query work
unchanged.  Note that for operation points ``--trials`` is a no-op (the
horizon pins the trial count); scale their budget with ``--attacks`` and
deep ``--set`` paths such as ``operation.profile.hours=6``.

Budget overrides (``--trials``, ``--attacks``, arbitrary ``--set`` paths)
become definition ``overrides``; derived definitions hash differently, so a
quick-budget campaign and the paper-budget campaign never share a store
entry.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.campaign.definition import CampaignDefinition
from repro.engine.scenarios import available_scenarios, scenario_suite


def available_campaigns() -> tuple[str, ...]:
    """Sorted names of the registered campaigns (one per scenario suite)."""
    return available_scenarios()


def campaign_from_suite(
    name: str,
    overrides: Mapping[str, Any] | None = None,
    shard_size: int | None = None,
) -> CampaignDefinition:
    """Wrap a scenario suite into a campaign definition.

    Parameters
    ----------
    name:
        Suite name as accepted by
        :func:`repro.engine.scenarios.scenario_suite`.
    overrides:
        Dotted-path overrides applied to every point (trial budgets etc.).
    shard_size:
        Points per shard; defaults to the definition default.
    """
    specs = scenario_suite(name)
    extra = {} if shard_size is None else {"shard_size": shard_size}
    definition = CampaignDefinition(
        name=f"suite-{name.strip().lower()}",
        points=specs,
        description=f"Canonical scenario suite {name!r} as a campaign.",
        tags=("suite", name.strip().lower()),
        **extra,
    )
    if overrides:
        definition = definition.with_overrides(overrides)
    return definition


__all__ = ["available_campaigns", "campaign_from_suite"]
