"""The :class:`PowerNetwork` container.

A :class:`PowerNetwork` bundles buses, branches and generators, validates
their structural consistency once at construction time, and offers
copy-with-changes constructors that the MTD machinery uses to derive
perturbed variants of a base case (different reactances, different loads)
without mutating shared state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import GridModelError
from repro.grid.arrays import NetworkArrays
from repro.grid.components import Branch, Bus, Generator
from repro.utils.units import DEFAULT_BASE_MVA


@dataclass(frozen=True)
class PowerNetwork:
    """An immutable description of a transmission network.

    Parameters
    ----------
    buses, branches, generators:
        Component tuples.  Bus, branch and generator indices must each form
        the contiguous range ``0..len-1``; exactly one bus is the slack.
    base_mva:
        System MVA base used for per-unit conversion.
    name:
        Optional case name (e.g. ``"ieee14"``).
    """

    buses: tuple[Bus, ...]
    branches: tuple[Branch, ...]
    generators: tuple[Generator, ...]
    base_mva: float = DEFAULT_BASE_MVA
    name: str = ""

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_components(
        cls,
        buses: Iterable[Bus],
        branches: Iterable[Branch],
        generators: Iterable[Generator],
        base_mva: float = DEFAULT_BASE_MVA,
        name: str = "",
    ) -> "PowerNetwork":
        """Build a network from iterables of components."""
        return cls(
            buses=tuple(buses),
            branches=tuple(branches),
            generators=tuple(generators),
            base_mva=float(base_mva),
            name=name,
        )

    def _validate(self) -> None:
        if not self.buses:
            raise GridModelError("a network must contain at least one bus")
        if not self.branches:
            raise GridModelError("a network must contain at least one branch")
        if self.base_mva <= 0:
            raise GridModelError(f"base_mva must be positive, got {self.base_mva}")

        # Component tuples must be *ordered by index*, not merely cover the
        # contiguous range: the arrays view (and the matrix builders on top
        # of it) extract fields in tuple order, so a permuted tuple would
        # silently permute every derived vector/matrix.
        bus_indices = [bus.index for bus in self.buses]
        if bus_indices != list(range(len(self.buses))):
            raise GridModelError(
                "bus indices must form the contiguous range 0..N-1 in tuple "
                f"order, got {bus_indices}"
            )
        slack_buses = [bus.index for bus in self.buses if bus.is_slack]
        if len(slack_buses) != 1:
            raise GridModelError(
                f"exactly one slack bus is required, found {len(slack_buses)}"
            )

        branch_indices = [branch.index for branch in self.branches]
        if branch_indices != list(range(len(self.branches))):
            raise GridModelError(
                "branch indices must form the contiguous range 0..L-1 in "
                f"tuple order, got {branch_indices}"
            )
        valid_buses = set(bus_indices)
        for branch in self.branches:
            if branch.from_bus not in valid_buses or branch.to_bus not in valid_buses:
                raise GridModelError(
                    f"branch {branch.index} references unknown bus "
                    f"({branch.from_bus} -> {branch.to_bus})"
                )

        gen_indices = [gen.index for gen in self.generators]
        if gen_indices != list(range(len(self.generators))):
            raise GridModelError(
                "generator indices must form the contiguous range 0..G-1 in "
                f"tuple order, got {gen_indices}"
            )
        for gen in self.generators:
            if gen.bus not in valid_buses:
                raise GridModelError(
                    f"generator {gen.index} references unknown bus {gen.bus}"
                )

        if not self._is_connected():
            raise GridModelError("the network graph must be connected")

    def _is_connected(self) -> bool:
        """Breadth-first connectivity check over the in-service branch graph."""
        adjacency: dict[int, list[int]] = {bus.index: [] for bus in self.buses}
        for branch in self.branches:
            if not branch.in_service:
                continue
            adjacency[branch.from_bus].append(branch.to_bus)
            adjacency[branch.to_bus].append(branch.from_bus)
        visited = {self.buses[0].index}
        frontier = [self.buses[0].index]
        while frontier:
            node = frontier.pop()
            for neighbour in adjacency[node]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append(neighbour)
        return len(visited) == len(self.buses)

    # ------------------------------------------------------------------
    # Vectorized compute representation
    # ------------------------------------------------------------------
    @property
    def arrays(self) -> NetworkArrays:
        """The structure-of-arrays compute view of this network.

        Materialised lazily on first access and cached for the lifetime of
        the (immutable) network, so the matrix builders and solver layers —
        which all operate on :class:`~repro.grid.arrays.NetworkArrays` —
        extract the component data and build the topology artifacts exactly
        once per network.  Reactance-only derivatives produced by
        :meth:`with_reactances` share the cached topology.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            cached = NetworkArrays.from_network(self)
            # Memoisation of a value derived purely from frozen fields:
            # observationally immutable, so exempt from the mutation rule.
            # repro-lint: disable=frozen-mutation
            object.__setattr__(self, "_arrays", cached)
        return cached

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_buses(self) -> int:
        """Number of buses ``N``."""
        return len(self.buses)

    @property
    def n_branches(self) -> int:
        """Number of branches ``L``."""
        return len(self.branches)

    @property
    def n_generators(self) -> int:
        """Number of generators."""
        return len(self.generators)

    @property
    def n_measurements(self) -> int:
        """Number of SCADA measurements ``M = 2L + N`` in the paper's model."""
        return 2 * self.n_branches + self.n_buses

    @property
    def slack_bus(self) -> int:
        """Index of the slack (angle reference) bus."""
        for bus in self.buses:
            if bus.is_slack:
                return bus.index
        raise GridModelError("no slack bus defined")  # pragma: no cover - validated

    @property
    def dfacts_branches(self) -> tuple[int, ...]:
        """Indices of in-service D-FACTS-equipped branches (the set L_D)."""
        return tuple(
            branch.index
            for branch in self.branches
            if branch.has_dfacts and branch.in_service
        )

    def branch_status(self) -> np.ndarray:
        """Per-branch service status as a boolean vector (``True`` = live)."""
        return np.array([branch.in_service for branch in self.branches], dtype=bool)

    # ------------------------------------------------------------------
    # Vector views
    # ------------------------------------------------------------------
    def loads_mw(self) -> np.ndarray:
        """Bus load vector in MW, ordered by bus index."""
        return self.arrays.loads_mw()

    def reactances(self) -> np.ndarray:
        """Branch reactance vector (per unit), ordered by branch index."""
        return self.arrays.reactances()

    def reactance_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x_min, x_max)`` vectors honouring the D-FACTS limits.

        Branches without D-FACTS have ``x_min == x_max == x`` as in the
        paper's convention.
        """
        return self.arrays.reactance_bounds()

    def flow_limits_mw(self) -> np.ndarray:
        """Branch flow limit vector ``F^max`` in MW."""
        return self.arrays.flow_limits_mw()

    def generator_buses(self) -> np.ndarray:
        """Bus index of each generator, ordered by generator index."""
        return self.arrays.generator_buses()

    def generator_limits_mw(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(p_min, p_max)`` generator limit vectors in MW."""
        return self.arrays.generator_limits_mw()

    def generator_costs(self) -> np.ndarray:
        """Linear marginal cost vector in $/MWh, ordered by generator index."""
        return self.arrays.generator_costs()

    def total_load_mw(self) -> float:
        """Total system demand in MW."""
        return self.arrays.total_load_mw()

    def total_generation_capacity_mw(self) -> float:
        """Sum of generator maximum outputs in MW."""
        return self.arrays.total_generation_capacity_mw()

    def branch_between(self, bus_a: int, bus_b: int) -> Branch:
        """Return the first branch connecting ``bus_a`` and ``bus_b``.

        Raises :class:`GridModelError` if no such branch exists.
        """
        for branch in self.branches:
            if {branch.from_bus, branch.to_bus} == {bus_a, bus_b}:
                return branch
        raise GridModelError(f"no branch between buses {bus_a} and {bus_b}")

    # ------------------------------------------------------------------
    # Copy-with-changes constructors
    # ------------------------------------------------------------------
    def with_reactances(self, reactances: Sequence[float] | np.ndarray) -> "PowerNetwork":
        """Return a copy of the network with branch reactances replaced.

        ``reactances`` must contain one value per branch, ordered by branch
        index.  This is the primitive on which MTD perturbations are built,
        so it takes the *fast derivation path*: only the checks a reactance
        change can actually invalidate run (count and positivity — the same
        errors the full constructor would raise), the structural
        re-validation of ``__post_init__`` (index contiguity, slack
        uniqueness, the BFS connectivity scan) is skipped because the
        wiring is untouched, and the derived network shares its parent's
        cached :class:`~repro.grid.arrays.TopologyCache` through
        :attr:`arrays`.
        """
        x = np.asarray(reactances, dtype=float).ravel()
        if x.shape[0] != self.n_branches:
            raise GridModelError(
                f"expected {self.n_branches} reactances, got {x.shape[0]}"
            )
        if np.any(x <= 0):
            raise GridModelError("all reactances must be strictly positive")
        new_branches = tuple(
            branch.with_reactance(x[branch.index]) for branch in self.branches
        )
        derived = object.__new__(PowerNetwork)
        object.__setattr__(derived, "buses", self.buses)
        object.__setattr__(derived, "branches", new_branches)
        object.__setattr__(derived, "generators", self.generators)
        object.__setattr__(derived, "base_mva", self.base_mva)
        object.__setattr__(derived, "name", self.name)
        object.__setattr__(derived, "_arrays", self.arrays.with_reactances(x))
        return derived

    def with_branch_status(
        self, status: Sequence[bool] | np.ndarray
    ) -> "PowerNetwork":
        """Return a copy with per-branch service status replaced.

        ``status`` holds one boolean per branch (``True`` = in service),
        ordered by branch index.  Like :meth:`with_reactances` this is a
        *fast derivation path*: out-of-service branches keep their slot in
        the branch list (incidence, measurement dimensions and indexing are
        unchanged — only the branch susceptance is zeroed by the matrix
        builders), so the derived network shares its parent's cached
        :class:`~repro.grid.arrays.TopologyCache`, and the only structural
        check that a status change can invalidate — connectivity of the
        active subgraph — runs incrementally in
        :meth:`NetworkArrays.with_branch_status
        <repro.grid.arrays.NetworkArrays.with_branch_status>`.  An outage
        set that islands the grid raises
        :class:`~repro.exceptions.IslandingError` naming the branches.
        """
        s = np.asarray(status, dtype=bool).ravel()
        if s.shape[0] != self.n_branches:
            raise GridModelError(
                f"expected {self.n_branches} status flags, got {s.shape[0]}"
            )
        # Runs the islanding check (and raises) before any sharing happens.
        derived_arrays = self.arrays.with_branch_status(s)
        new_branches = tuple(
            branch if branch.in_service == bool(s[branch.index])
            else branch.with_status(bool(s[branch.index]))
            for branch in self.branches
        )
        derived = object.__new__(PowerNetwork)
        object.__setattr__(derived, "buses", self.buses)
        object.__setattr__(derived, "branches", new_branches)
        object.__setattr__(derived, "generators", self.generators)
        object.__setattr__(derived, "base_mva", self.base_mva)
        object.__setattr__(derived, "name", self.name)
        object.__setattr__(derived, "_arrays", derived_arrays)
        return derived

    def with_branch_outages(self, branch_indices: Iterable[int]) -> "PowerNetwork":
        """Return a copy with the listed branches taken out of service.

        Outages compose with any already present on ``self``; unknown
        branch indices raise :class:`GridModelError`, islanding outages
        raise :class:`~repro.exceptions.IslandingError`.
        """
        status = self.branch_status()
        for index in branch_indices:
            k = int(index)
            if not (0 <= k < self.n_branches):
                raise GridModelError(f"unknown branch index {k}")
            status[k] = False
        return self.with_branch_status(status)

    def with_generator_status(
        self, status: Sequence[bool] | np.ndarray | Mapping[int, bool]
    ) -> "PowerNetwork":
        """Return a copy with per-generator service status replaced.

        ``status`` is either a full per-generator vector or a mapping
        ``{generator_index: in_service}`` of units to change.  Generator
        outages do not change the network graph, so this goes through the
        ordinary validated constructor.
        """
        if isinstance(status, Mapping):
            flags = [gen.in_service for gen in self.generators]
            for index, value in status.items():
                if index < 0 or index >= self.n_generators:
                    raise GridModelError(f"unknown generator index {index}")
                flags[index] = bool(value)
        else:
            vector = np.asarray(status, dtype=bool).ravel()
            if vector.shape[0] != self.n_generators:
                raise GridModelError(
                    f"expected {self.n_generators} status flags, got {vector.shape[0]}"
                )
            flags = [bool(v) for v in vector]
        new_generators = tuple(
            gen if gen.in_service == flags[gen.index] else gen.with_status(flags[gen.index])
            for gen in self.generators
        )
        return PowerNetwork(
            buses=self.buses,
            branches=self.branches,
            generators=new_generators,
            base_mva=self.base_mva,
            name=self.name,
        )

    def with_loads(self, loads_mw: Sequence[float] | np.ndarray | Mapping[int, float]) -> "PowerNetwork":
        """Return a copy of the network with bus loads replaced.

        ``loads_mw`` is either a full per-bus vector (ordered by bus index)
        or a mapping ``{bus_index: load_mw}`` of buses to change.
        """
        current = self.loads_mw()
        if isinstance(loads_mw, Mapping):
            new_loads = current.copy()
            for bus_index, value in loads_mw.items():
                if bus_index < 0 or bus_index >= self.n_buses:
                    raise GridModelError(f"unknown bus index {bus_index}")
                new_loads[bus_index] = float(value)
        else:
            new_loads = np.asarray(loads_mw, dtype=float).ravel()
            if new_loads.shape[0] != self.n_buses:
                raise GridModelError(
                    f"expected {self.n_buses} loads, got {new_loads.shape[0]}"
                )
        if np.any(new_loads < 0):
            raise GridModelError("loads must be non-negative")
        new_buses = tuple(bus.with_load(new_loads[bus.index]) for bus in self.buses)
        return PowerNetwork(
            buses=new_buses,
            branches=self.branches,
            generators=self.generators,
            base_mva=self.base_mva,
            name=self.name,
        )

    def with_scaled_loads(self, factor: float) -> "PowerNetwork":
        """Return a copy with every bus load multiplied by ``factor``."""
        if factor < 0:
            raise GridModelError(f"scaling factor must be non-negative, got {factor}")
        return self.with_loads(self.loads_mw() * float(factor))

    def with_dfacts_on(
        self,
        branch_indices: Iterable[int],
        min_factor: float,
        max_factor: float,
    ) -> "PowerNetwork":
        """Return a copy with D-FACTS devices installed on selected branches.

        Existing D-FACTS installations on other branches are preserved.
        """
        targets = set(int(i) for i in branch_indices)
        unknown = targets - set(range(self.n_branches))
        if unknown:
            raise GridModelError(f"unknown branch indices: {sorted(unknown)}")
        new_branches = tuple(
            branch.with_dfacts(min_factor, max_factor)
            if branch.index in targets
            else branch
            for branch in self.branches
        )
        return PowerNetwork(
            buses=self.buses,
            branches=new_branches,
            generators=self.generators,
            base_mva=self.base_mva,
            name=self.name,
        )

    def with_flow_limits(self, limits_mw: Sequence[float] | np.ndarray | Mapping[int, float]) -> "PowerNetwork":
        """Return a copy of the network with branch flow limits replaced."""
        current = self.flow_limits_mw()
        if isinstance(limits_mw, Mapping):
            new_limits = current.copy()
            for branch_index, value in limits_mw.items():
                if branch_index < 0 or branch_index >= self.n_branches:
                    raise GridModelError(f"unknown branch index {branch_index}")
                new_limits[branch_index] = float(value)
        else:
            new_limits = np.asarray(limits_mw, dtype=float).ravel()
            if new_limits.shape[0] != self.n_branches:
                raise GridModelError(
                    f"expected {self.n_branches} limits, got {new_limits.shape[0]}"
                )
        if np.any(new_limits <= 0):
            raise GridModelError("flow limits must be strictly positive")
        new_branches = []
        for branch in self.branches:
            from dataclasses import replace as dc_replace

            new_branches.append(dc_replace(branch, rate_mw=float(new_limits[branch.index])))
        return PowerNetwork(
            buses=self.buses,
            branches=tuple(new_branches),
            generators=self.generators,
            base_mva=self.base_mva,
            name=self.name,
        )

    def describe(self) -> str:
        """Return a short human-readable summary of the case."""
        return (
            f"PowerNetwork(name={self.name or 'unnamed'!r}, buses={self.n_buses}, "
            f"branches={self.n_branches}, generators={self.n_generators}, "
            f"dfacts={len(self.dfacts_branches)}, "
            f"total_load={self.total_load_mw():.1f} MW)"
        )


__all__ = ["PowerNetwork"]
