"""Network sanity checks beyond structural validation.

:class:`~repro.grid.network.PowerNetwork` enforces structural invariants
(contiguous indices, connectivity, a single slack bus).  The functions here
perform *operational* sanity checks that are useful before running OPF or
MTD studies — e.g. whether there is enough generation capacity to serve the
load, or whether the D-FACTS placement leaves the measurement matrix
perturbable at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.matrices import reduced_measurement_matrix
from repro.grid.network import PowerNetwork
from repro.utils.linalg import is_full_column_rank


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_for_operation`.

    Attributes
    ----------
    ok:
        True when no *errors* were found (warnings may still be present).
    errors:
        Conditions that make OPF / MTD studies impossible or meaningless.
    warnings:
        Conditions that are suspicious but not fatal (e.g. no D-FACTS
        devices installed, extremely tight flow limits).
    """

    ok: bool = True
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    def add_error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)

    def add_warning(self, message: str) -> None:
        self.warnings.append(message)

    def summary(self) -> str:
        lines = [f"validation {'passed' if self.ok else 'FAILED'}"]
        for err in self.errors:
            lines.append(f"  error: {err}")
        for warn in self.warnings:
            lines.append(f"  warning: {warn}")
        return "\n".join(lines)


def validate_for_operation(network: PowerNetwork) -> ValidationReport:
    """Run operational sanity checks on ``network``.

    Returns a :class:`ValidationReport`; callers decide whether to treat
    warnings as fatal.
    """
    report = ValidationReport()

    _check_generation_adequacy(network, report)
    _check_flow_limits(network, report)
    _check_observability(network, report)
    _check_dfacts(network, report)
    return report


def _check_generation_adequacy(network: PowerNetwork, report: ValidationReport) -> None:
    capacity = network.total_generation_capacity_mw()
    load = network.total_load_mw()
    if network.n_generators == 0:
        report.add_error("network has no generators")
        return
    if capacity < load:
        report.add_error(
            f"total generation capacity {capacity:.1f} MW is below total load {load:.1f} MW"
        )
    p_min_total = float(np.sum(network.generator_limits_mw()[0]))
    if p_min_total > load:
        report.add_error(
            f"sum of generator minimum outputs {p_min_total:.1f} MW exceeds load {load:.1f} MW"
        )
    if capacity < 1.05 * load:
        report.add_warning(
            "generation capacity margin is below 5%; OPF may be infeasible after perturbations"
        )


def _check_flow_limits(network: PowerNetwork, report: ValidationReport) -> None:
    limits = network.flow_limits_mw()
    load = network.total_load_mw()
    finite = limits[np.isfinite(limits)]
    if finite.size == 0:
        report.add_warning("no finite branch flow limits; congestion effects cannot appear")
        return
    if np.any(finite < 1e-3):
        report.add_error("some branch flow limits are (near) zero")
    if load > 0 and float(np.max(finite)) < 0.01 * load:
        report.add_warning("all branch limits are tiny relative to total load")


def _check_observability(network: PowerNetwork, report: ValidationReport) -> None:
    H = reduced_measurement_matrix(network)
    if not is_full_column_rank(H):
        report.add_error(
            "reduced measurement matrix is rank deficient; the network is unobservable"
        )


def _check_dfacts(network: PowerNetwork, report: ValidationReport) -> None:
    dfacts = network.dfacts_branches
    if not dfacts:
        report.add_warning("no D-FACTS devices installed; MTD perturbations are impossible")
        return
    for index in dfacts:
        branch = network.branches[index]
        if branch.dfacts_min_factor == branch.dfacts_max_factor == 1.0:
            report.add_warning(
                f"branch {index} has a D-FACTS device with a degenerate adjustment range"
            )


def validate_line_ratings(network: PowerNetwork, case_name: str | None = None) -> None:
    """Fail fast on line ratings that make dispatch trivially infeasible.

    The case registry runs this check when a case registered with
    ``validate_ratings=True`` is loaded, so misconfigured networks are
    rejected with an actionable message at construction time instead of
    surfacing as an opaque "infeasible" status deep inside the OPF solver.

    Checked necessary conditions (each violation is reported):

    * every finite line rating is strictly positive;
    * the finite ratings of the lines attached to a bus can carry the part
      of its load that local generation cannot serve (otherwise the load
      can never be met);
    * total generation capacity covers the total load.

    Parameters
    ----------
    network:
        The network to check.
    case_name:
        Registry name used in the error message; defaults to the network's
        own name.

    Raises
    ------
    ConfigurationError
        Listing every violated condition.
    """
    label = case_name or network.name
    limits = network.flow_limits_mw()
    loads = network.loads_mw()
    problems: list[str] = []

    finite = np.isfinite(limits)
    nonpositive = np.flatnonzero(finite & (limits <= 0.0))
    if nonpositive.size:
        problems.append(
            f"branches {nonpositive.tolist()} have non-positive flow ratings"
        )

    attached_capacity = np.zeros(network.n_buses)
    unlimited = np.zeros(network.n_buses, dtype=bool)
    for branch in network.branches:
        limit = limits[branch.index]
        for bus in (branch.from_bus, branch.to_bus):
            if np.isfinite(limit):
                attached_capacity[bus] += max(limit, 0.0)
            else:
                unlimited[bus] = True
    local_generation = np.zeros(network.n_buses)
    for gen in network.generators:
        local_generation[gen.bus] += max(gen.p_max_mw, 0.0)
    for bus in range(network.n_buses):
        if bus == network.slack_bus or unlimited[bus]:
            continue
        # Only the load share that co-located generators cannot serve has
        # to traverse the attached lines.
        imported = loads[bus] - local_generation[bus]
        if imported > attached_capacity[bus] + 1e-9:
            problems.append(
                f"bus {bus} needs {imported:.1f} MW of imports, exceeding the "
                f"{attached_capacity[bus]:.1f} MW combined rating of its attached lines"
            )

    capacity = network.total_generation_capacity_mw()
    total_load = network.total_load_mw()
    if capacity < total_load:
        problems.append(
            f"total generation capacity {capacity:.1f} MW is below total load {total_load:.1f} MW"
        )

    if problems:
        raise ConfigurationError(
            f"case {label!r} failed line-rating validation: " + "; ".join(problems)
        )


__all__ = ["ValidationReport", "validate_for_operation", "validate_line_ratings"]
