function mpc = case14
% IEEE 14-bus test case with the evaluation settings of Lakshminarayana &
% Yau (DSN 2018): Table IV generator fleet with linear costs, 160/60 MW
% branch ratings and the paper's D-FACTS placement (mpc.dfacts).

%% MATPOWER Case Format : Version 2
mpc.version = '2';

%% system MVA base
mpc.baseMVA = 100;

%% bus data
%	bus_i	type	Pd	Qd	Gs	Bs	area	Vm	Va	baseKV	zone	Vmax	Vmin
mpc.bus = [
	1	3	0	0	0	0	1	1	0	0	1	1.06	0.94;
	2	2	21.7	0	0	0	1	1	0	0	1	1.06	0.94;
	3	2	94.2	0	0	0	1	1	0	0	1	1.06	0.94;
	4	1	47.8	0	0	0	1	1	0	0	1	1.06	0.94;
	5	1	7.6	0	0	0	1	1	0	0	1	1.06	0.94;
	6	2	11.2	0	0	0	1	1	0	0	1	1.06	0.94;
	7	1	0	0	0	0	1	1	0	0	1	1.06	0.94;
	8	2	0	0	0	0	1	1	0	0	1	1.06	0.94;
	9	1	29.5	0	0	0	1	1	0	0	1	1.06	0.94;
	10	1	9	0	0	0	1	1	0	0	1	1.06	0.94;
	11	1	3.5	0	0	0	1	1	0	0	1	1.06	0.94;
	12	1	6.1	0	0	0	1	1	0	0	1	1.06	0.94;
	13	1	13.5	0	0	0	1	1	0	0	1	1.06	0.94;
	14	1	14.9	0	0	0	1	1	0	0	1	1.06	0.94;
];

%% generator data
%	bus	Pg	Qg	Qmax	Qmin	Vg	mBase	status	Pmax	Pmin
mpc.gen = [
	1	0	0	0	0	1	100	1	300	0;
	2	0	0	0	0	1	100	1	50	0;
	3	0	0	0	0	1	100	1	30	0;
	6	0	0	0	0	1	100	1	50	0;
	8	0	0	0	0	1	100	1	20	0;
];

%% branch data
%	fbus	tbus	r	x	b	rateA	rateB	rateC	ratio	angle	status	angmin	angmax
mpc.branch = [
	1	2	0	0.05917	0	160	0	0	0	0	1	-360	360;
	1	5	0	0.22304	0	60	0	0	0	0	1	-360	360;
	2	3	0	0.19797	0	60	0	0	0	0	1	-360	360;
	2	4	0	0.17632	0	60	0	0	0	0	1	-360	360;
	2	5	0	0.17388	0	60	0	0	0	0	1	-360	360;
	3	4	0	0.17103	0	60	0	0	0	0	1	-360	360;
	4	5	0	0.04211	0	60	0	0	0	0	1	-360	360;
	4	7	0	0.20912	0	60	0	0	0	0	1	-360	360;
	4	9	0	0.55618	0	60	0	0	0	0	1	-360	360;
	5	6	0	0.25202	0	60	0	0	0	0	1	-360	360;
	6	11	0	0.1989	0	60	0	0	0	0	1	-360	360;
	6	12	0	0.25581	0	60	0	0	0	0	1	-360	360;
	6	13	0	0.13027	0	60	0	0	0	0	1	-360	360;
	7	8	0	0.17615	0	60	0	0	0	0	1	-360	360;
	7	9	0	0.11001	0	60	0	0	0	0	1	-360	360;
	9	10	0	0.0845	0	60	0	0	0	0	1	-360	360;
	9	14	0	0.27038	0	60	0	0	0	0	1	-360	360;
	10	11	0	0.19207	0	60	0	0	0	0	1	-360	360;
	12	13	0	0.19988	0	60	0	0	0	0	1	-360	360;
	13	14	0	0.34802	0	60	0	0	0	0	1	-360	360;
];

%% generator cost data (linear: MODEL=2, NCOST=2 -> c1 c0)
%	model	startup	shutdown	n	c1	c0
mpc.gencost = [
	2	0	0	2	20	0;
	2	0	0	2	30	0;
	2	0	0	2	40	0;
	2	0	0	2	50	0;
	2	0	0	2	35	0;
];

%% MTD extension: D-FACTS-equipped branches (1-indexed) and eta_max
mpc.dfacts = [1	5	9	11	17	19];
mpc.dfacts_range = 0.5;
