"""Primitive grid components: buses, branches and generators.

The components are frozen dataclasses so that a :class:`PowerNetwork` built
from them can be shared between the defender- and attacker-side models
without accidental mutation; derived networks (e.g. after an MTD reactance
perturbation) are produced through explicit copy-with-changes constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import GridModelError


@dataclass(frozen=True)
class Bus:
    """A network bus (node).

    Parameters
    ----------
    index:
        Zero-based bus index.  Indices must form a contiguous range
        ``0..N-1`` within a network.
    load_mw:
        Active-power demand at the bus, in MW.  Non-negative.
    name:
        Optional human readable label (e.g. ``"Bus 4"``).
    is_slack:
        Whether this bus is the angle-reference (slack) bus.  Exactly one bus
        per network must be marked as slack.
    """

    index: int
    load_mw: float = 0.0
    name: str = ""
    is_slack: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise GridModelError(f"bus index must be non-negative, got {self.index}")
        if self.load_mw < 0:
            raise GridModelError(
                f"bus {self.index}: load must be non-negative, got {self.load_mw}"
            )

    def with_load(self, load_mw: float) -> "Bus":
        """Return a copy of this bus with a different load."""
        return replace(self, load_mw=float(load_mw))


@dataclass(frozen=True)
class Branch:
    """A transmission line (or transformer) connecting two buses.

    Parameters
    ----------
    index:
        Zero-based branch index, contiguous within a network.
    from_bus, to_bus:
        Indices of the terminal buses.  The orientation defines the sign of
        the branch flow (positive from ``from_bus`` to ``to_bus``).
    reactance:
        Series reactance in per unit.  Must be strictly positive (the DC
        model ignores resistance).
    rate_mw:
        Long-term flow limit ``F^max`` in MW.  ``float('inf')`` disables the
        limit.
    has_dfacts:
        Whether a D-FACTS device is installed on this line, i.e. whether the
        MTD may perturb its reactance.
    dfacts_min_factor, dfacts_max_factor:
        Allowed reactance range as multiples of the nominal reactance, e.g.
        ``0.5`` / ``1.5`` for the paper's ``η_max = 0.5``.  Ignored when
        ``has_dfacts`` is false.
    in_service:
        Whether the branch is energised.  An out-of-service branch keeps
        its position in the branch list (so measurement dimensions and
        branch indexing are stable across contingencies) but carries no
        flow: the DC model treats it as zero susceptance.
    name:
        Optional label.
    """

    index: int
    from_bus: int
    to_bus: int
    reactance: float
    rate_mw: float = float("inf")
    has_dfacts: bool = False
    dfacts_min_factor: float = 1.0
    dfacts_max_factor: float = 1.0
    in_service: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise GridModelError(f"branch index must be non-negative, got {self.index}")
        if self.from_bus < 0 or self.to_bus < 0:
            raise GridModelError(
                f"branch {self.index}: bus indices must be non-negative "
                f"(got {self.from_bus} -> {self.to_bus})"
            )
        if self.from_bus == self.to_bus:
            raise GridModelError(
                f"branch {self.index}: from and to bus must differ (both {self.from_bus})"
            )
        if self.reactance <= 0:
            raise GridModelError(
                f"branch {self.index}: reactance must be positive, got {self.reactance}"
            )
        if self.rate_mw <= 0:
            raise GridModelError(
                f"branch {self.index}: rate must be positive, got {self.rate_mw}"
            )
        if self.has_dfacts:
            if not (0 < self.dfacts_min_factor <= 1.0 <= self.dfacts_max_factor):
                raise GridModelError(
                    f"branch {self.index}: D-FACTS factors must satisfy "
                    f"0 < min <= 1 <= max, got "
                    f"[{self.dfacts_min_factor}, {self.dfacts_max_factor}]"
                )

    @property
    def susceptance(self) -> float:
        """Series susceptance magnitude ``1/x`` used by the DC model."""
        return 1.0 / self.reactance

    @property
    def reactance_min(self) -> float:
        """Lower reactance limit achievable by the D-FACTS device."""
        if not self.has_dfacts:
            return self.reactance
        return self.reactance * self.dfacts_min_factor

    @property
    def reactance_max(self) -> float:
        """Upper reactance limit achievable by the D-FACTS device."""
        if not self.has_dfacts:
            return self.reactance
        return self.reactance * self.dfacts_max_factor

    def with_reactance(self, reactance: float) -> "Branch":
        """Return a copy with a different series reactance.

        The new value is not checked against the D-FACTS limits here; limit
        enforcement is the responsibility of the perturbation and OPF layers,
        which may deliberately explore the boundary.
        """
        return replace(self, reactance=float(reactance))

    def with_dfacts(
        self,
        min_factor: float,
        max_factor: float,
    ) -> "Branch":
        """Return a copy with a D-FACTS device installed on this line."""
        return replace(
            self,
            has_dfacts=True,
            dfacts_min_factor=float(min_factor),
            dfacts_max_factor=float(max_factor),
        )

    def with_status(self, in_service: bool) -> "Branch":
        """Return a copy of this branch with a different service status."""
        return replace(self, in_service=bool(in_service))

    def endpoints(self) -> tuple[int, int]:
        """Return ``(from_bus, to_bus)``."""
        return (self.from_bus, self.to_bus)


@dataclass(frozen=True)
class Generator:
    """A dispatchable generator with a linear cost curve.

    Parameters
    ----------
    index:
        Zero-based generator index, contiguous within a network.
    bus:
        Index of the bus the generator is connected to.
    p_max_mw:
        Maximum active-power output in MW.
    p_min_mw:
        Minimum active-power output in MW (defaults to zero).
    cost_per_mwh:
        Linear marginal cost ``c_i`` in $/MWh, as in the paper's
        ``C_i(G_i) = c_i · G_i`` model.
    in_service:
        Whether the unit is available for dispatch.  An out-of-service
        generator keeps its slot in the generator list but contributes a
        ``[0, 0]`` dispatch range to the OPF.
    name:
        Optional label.
    """

    index: int
    bus: int
    p_max_mw: float
    p_min_mw: float = 0.0
    cost_per_mwh: float = 0.0
    in_service: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise GridModelError(f"generator index must be non-negative, got {self.index}")
        if self.bus < 0:
            raise GridModelError(
                f"generator {self.index}: bus index must be non-negative, got {self.bus}"
            )
        if self.p_max_mw < 0:
            raise GridModelError(
                f"generator {self.index}: p_max must be non-negative, got {self.p_max_mw}"
            )
        if not (0 <= self.p_min_mw <= self.p_max_mw):
            raise GridModelError(
                f"generator {self.index}: need 0 <= p_min <= p_max, got "
                f"p_min={self.p_min_mw}, p_max={self.p_max_mw}"
            )
        if self.cost_per_mwh < 0:
            raise GridModelError(
                f"generator {self.index}: cost must be non-negative, got {self.cost_per_mwh}"
            )

    def with_status(self, in_service: bool) -> "Generator":
        """Return a copy of this generator with a different service status."""
        return replace(self, in_service=bool(in_service))

    def cost_of(self, output_mw: float) -> float:
        """Generation cost, in $, of producing ``output_mw`` for one hour."""
        return self.cost_per_mwh * float(output_mw)


__all__ = ["Bus", "Branch", "Generator"]
