"""Structure-of-arrays network representation — the vectorized compute core.

The MTD loop evaluates thousands of reactance-perturbed variants of one base
case.  Deriving each variant through the per-component dataclasses of
:mod:`repro.grid.components` means rebuilding ``L`` frozen :class:`Branch`
objects and re-running the full structural validation (including a
breadth-first connectivity check) even though only the reactance values
changed — pure Python object churn on the hottest path of the library.

:class:`NetworkArrays` stores the same case data as flat NumPy arrays (one
array per field instead of one object per component) and shares a
:class:`TopologyCache` of the artifacts that depend only on the wiring —
branch endpoints, the incidence matrix (dense and sparse), the non-slack
index vector and the generator-incidence matrix — across every reactance-only
derivative.  Deriving a perturbed variant is then a single positivity check
plus one array swap, and the matrix builders in :mod:`repro.grid.matrices`
reuse the cached incidence instead of rebuilding it per call.

:class:`~repro.grid.network.PowerNetwork` remains the validated
construction/IO facade: it lazily materialises its arrays view once
(:attr:`PowerNetwork.arrays <repro.grid.network.PowerNetwork.arrays>`) and
every consumer of the read API (matrix builders, power flow, OPF, the
estimation stack) accepts either representation — the two are bit-identical
by construction, which the golden tests in ``tests/test_grid_arrays.py``
assert against an independent reference implementation.

All arrays handed to or held by a :class:`NetworkArrays` are frozen
(``writeable=False``); accessor methods mirror the
:class:`~repro.grid.network.PowerNetwork` vector views and return fresh
mutable copies so existing callers keep their ownership semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import GridModelError, IslandingError
from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE as _TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.grid.network import PowerNetwork


def _topology_lookup(built: bool) -> None:
    """Mirror one TopologyCache artifact lookup into the telemetry counters."""
    if _TELEMETRY.enabled:
        _metrics.counter("cache.topology.misses" if built else "cache.topology.hits")


def _frozen(values: np.ndarray, dtype) -> np.ndarray:
    """A read-only, C-contiguous copy of ``values`` with the given dtype."""
    arr = np.ascontiguousarray(values, dtype=dtype)
    if arr is values or arr.base is values:
        arr = arr.copy()
    arr.flags.writeable = False
    return arr


def _disconnected_buses(
    from_bus: np.ndarray, to_bus: np.ndarray, n_buses: int, status: np.ndarray
) -> list[int]:
    """Buses unreachable from bus 0 over the in-service branch graph.

    Returns an empty list when the active subgraph is connected.  Used by
    the contingency derivation paths to reject islanding outages with a
    precise error instead of letting a singular susceptance matrix surface
    downstream.
    """
    adjacency: list[list[int]] = [[] for _ in range(n_buses)]
    for k in np.flatnonzero(status):
        u, v = int(from_bus[k]), int(to_bus[k])
        adjacency[u].append(v)
        adjacency[v].append(u)
    visited = np.zeros(n_buses, dtype=bool)
    visited[0] = True
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if not visited[neighbour]:
                visited[neighbour] = True
                frontier.append(neighbour)
    return [int(i) for i in np.flatnonzero(~visited)]


def _normalized_status(status: np.ndarray) -> np.ndarray | None:
    """Canonical form of a service-status mask: ``None`` when all-true.

    The all-in-service case is the overwhelmingly common one, and
    representing it as ``None`` keeps the status-free code paths (and their
    outputs) bit-identical to the pre-contingency library.
    """
    if status.all():
        return None
    return _frozen(status, bool)


class TopologyCache:
    """Wiring-dependent artifacts shared by reactance-only derivatives.

    Everything cached here is a pure function of the branch endpoints, the
    generator placement and the slack bus — none of it changes when an MTD
    perturbation moves reactances — so one cache instance is shared by a
    base :class:`NetworkArrays` and all its
    :meth:`~NetworkArrays.with_reactances` derivatives.  Each artifact is
    built lazily on first use, exactly once, with the same arithmetic as
    the historical per-call builders (asserted bit-for-bit in the golden
    tests).  Cached arrays are read-only; consumers that need a mutable
    array copy them.
    """

    __slots__ = (
        "from_bus",
        "to_bus",
        "slack",
        "n_buses",
        "gen_bus",
        "_incidence",
        "_incidence_sparse",
        "_non_slack",
        "_generator_incidence",
    )

    def __init__(
        self,
        from_bus: np.ndarray,
        to_bus: np.ndarray,
        slack: int,
        n_buses: int,
        gen_bus: np.ndarray,
    ) -> None:
        self.from_bus = _frozen(from_bus, np.intp)
        self.to_bus = _frozen(to_bus, np.intp)
        self.slack = int(slack)
        self.n_buses = int(n_buses)
        self.gen_bus = _frozen(gen_bus, np.intp)
        self._incidence: np.ndarray | None = None
        self._incidence_sparse: sp.csr_matrix | None = None
        self._non_slack: np.ndarray | None = None
        self._generator_incidence: np.ndarray | None = None

    @property
    def n_branches(self) -> int:
        return self.from_bus.shape[0]

    def incidence(self) -> np.ndarray:
        """The ``N x L`` branch-bus incidence matrix ``A`` (read-only)."""
        _topology_lookup(built=self._incidence is None)
        if self._incidence is None:
            A = np.zeros((self.n_buses, self.n_branches))
            cols = np.arange(self.n_branches)
            A[self.from_bus, cols] = 1.0
            A[self.to_bus, cols] = -1.0
            A.flags.writeable = False
            self._incidence = A
        return self._incidence

    def incidence_sparse(self) -> sp.csr_matrix:
        """``A`` as a CSR matrix, shape ``(N, L)`` (do not mutate)."""
        _topology_lookup(built=self._incidence_sparse is None)
        if self._incidence_sparse is None:
            L = self.n_branches
            cols = np.arange(L)
            rows = np.concatenate([self.from_bus, self.to_bus])
            data = np.concatenate([np.ones(L), -np.ones(L)])
            self._incidence_sparse = sp.csr_matrix(
                (data, (rows, np.concatenate([cols, cols]))),
                shape=(self.n_buses, L),
            )
        return self._incidence_sparse

    def non_slack(self) -> np.ndarray:
        """Indices of all buses except the slack, ascending (read-only)."""
        _topology_lookup(built=self._non_slack is None)
        if self._non_slack is None:
            keep = np.array(
                [i for i in range(self.n_buses) if i != self.slack], dtype=int
            )
            keep.flags.writeable = False
            self._non_slack = keep
        return self._non_slack

    def generator_incidence(self) -> np.ndarray:
        """The ``N x G`` generator-to-bus mapping matrix (read-only)."""
        _topology_lookup(built=self._generator_incidence is None)
        if self._generator_incidence is None:
            C = np.zeros((self.n_buses, self.gen_bus.shape[0]))
            C[self.gen_bus, np.arange(self.gen_bus.shape[0])] = 1.0
            C.flags.writeable = False
            self._generator_incidence = C
        return self._generator_incidence


@dataclass(frozen=True, eq=False)
class NetworkArrays:
    """Frozen structure-of-arrays view of a power network.

    One array per component field (instead of one frozen dataclass per
    component) plus a shared :class:`TopologyCache`.  Instances mirror the
    read API of :class:`~repro.grid.network.PowerNetwork` — ``n_buses``,
    ``slack_bus``, ``loads_mw()``, ``reactances()``, ``reactance_bounds()``
    and friends — so the matrix builders, power-flow solvers and OPF layers
    accept either representation interchangeably.

    Instances are cheap to derive: :meth:`with_reactances` swaps the
    reactance array (after a positivity check) and :meth:`with_branch_status`
    swaps the service-status mask (after an islanding check); both share
    every other field and the topology cache with their parent.  Equality is
    identity — use the field arrays directly when comparing contents.

    ``branch_status`` is ``None`` when every branch is in service (the
    common case, chosen so the status-free fast paths stay bit-identical),
    otherwise a frozen boolean mask of length ``L``.  An out-of-service
    branch keeps its slot — the incidence matrix, the measurement dimension
    ``M = 2L + N`` and all branch indexing are unchanged — and only its
    susceptance is zeroed by the matrix builders, which is what lets every
    outage derivative share one :class:`TopologyCache`.
    """

    base_mva: float
    name: str
    slack: int
    bus_load_mw: np.ndarray
    branch_from: np.ndarray
    branch_to: np.ndarray
    branch_reactance: np.ndarray
    branch_rate_mw: np.ndarray
    branch_has_dfacts: np.ndarray
    branch_dfacts_min: np.ndarray
    branch_dfacts_max: np.ndarray
    gen_bus: np.ndarray
    gen_p_min_mw: np.ndarray
    gen_p_max_mw: np.ndarray
    gen_cost_per_mwh: np.ndarray
    topology: TopologyCache = field(repr=False)
    branch_status: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: "PowerNetwork") -> "NetworkArrays":
        """Extract the arrays view of a validated :class:`PowerNetwork`.

        Called (once, lazily) by ``PowerNetwork.arrays``; the network's
        validation guarantees contiguous indices, so component order equals
        index order and the extraction is a straight column scan.
        """
        L = network.n_branches
        G = network.n_generators
        branches = network.branches
        generators = network.generators
        from_bus = np.fromiter((b.from_bus for b in branches), dtype=np.intp, count=L)
        to_bus = np.fromiter((b.to_bus for b in branches), dtype=np.intp, count=L)
        gen_bus = np.fromiter((g.bus for g in generators), dtype=np.intp, count=G)
        topology = TopologyCache(
            from_bus=from_bus,
            to_bus=to_bus,
            slack=network.slack_bus,
            n_buses=network.n_buses,
            gen_bus=gen_bus,
        )
        loads = np.zeros(network.n_buses)
        for bus in network.buses:
            loads[bus.index] = bus.load_mw
        return cls(
            base_mva=float(network.base_mva),
            name=network.name,
            slack=int(network.slack_bus),
            bus_load_mw=_frozen(loads, float),
            branch_from=topology.from_bus,
            branch_to=topology.to_bus,
            branch_reactance=_frozen(
                np.fromiter((b.reactance for b in branches), dtype=float, count=L), float
            ),
            branch_rate_mw=_frozen(
                np.fromiter((b.rate_mw for b in branches), dtype=float, count=L), float
            ),
            branch_has_dfacts=_frozen(
                np.fromiter((b.has_dfacts for b in branches), dtype=bool, count=L), bool
            ),
            branch_dfacts_min=_frozen(
                np.fromiter((b.dfacts_min_factor for b in branches), dtype=float, count=L),
                float,
            ),
            branch_dfacts_max=_frozen(
                np.fromiter((b.dfacts_max_factor for b in branches), dtype=float, count=L),
                float,
            ),
            gen_bus=topology.gen_bus,
            # Out-of-service generators keep their slot with a [0, 0]
            # dispatch range, so the OPF constraint shapes are stable
            # across generator contingencies.
            gen_p_min_mw=_frozen(
                np.fromiter(
                    (g.p_min_mw if g.in_service else 0.0 for g in generators),
                    dtype=float,
                    count=G,
                ),
                float,
            ),
            gen_p_max_mw=_frozen(
                np.fromiter(
                    (g.p_max_mw if g.in_service else 0.0 for g in generators),
                    dtype=float,
                    count=G,
                ),
                float,
            ),
            gen_cost_per_mwh=_frozen(
                np.fromiter((g.cost_per_mwh for g in generators), dtype=float, count=G),
                float,
            ),
            topology=topology,
            branch_status=_normalized_status(
                np.fromiter((b.in_service for b in branches), dtype=bool, count=L)
            ),
        )

    def with_reactances(self, reactances: Sequence[float] | np.ndarray) -> "NetworkArrays":
        """The reactance-only derivative — the MTD perturbation fast path.

        Validates shape and positivity (the only checks a reactance change
        can invalidate) and shares every other array *and* the topology
        cache with ``self``, so incidence/non-slack/generator-incidence
        artifacts are never rebuilt for a perturbed variant.
        """
        x = np.asarray(reactances, dtype=float).ravel()
        if x.shape[0] != self.n_branches:
            raise GridModelError(
                f"expected {self.n_branches} reactances, got {x.shape[0]}"
            )
        if np.any(x <= 0):
            raise GridModelError("all reactances must be strictly positive")
        return replace(self, branch_reactance=_frozen(x, float))

    def with_branch_status(
        self, status: Sequence[bool] | np.ndarray
    ) -> "NetworkArrays":
        """The topology-status derivative — the contingency fast path.

        ``status`` holds one boolean per branch (``True`` = in service).
        The wiring arrays and the :class:`TopologyCache` are shared with
        ``self`` — an outage zeroes the branch's susceptance in the matrix
        builders instead of deleting its incidence column — so a contingency
        screen over thousands of outages never rebuilds topology artifacts.
        Outages that would island the grid are rejected with
        :class:`~repro.exceptions.IslandingError` naming the out-of-service
        branches.
        """
        s = np.asarray(status, dtype=bool).ravel()
        if s.shape[0] != self.n_branches:
            raise GridModelError(
                f"expected {self.n_branches} status flags, got {s.shape[0]}"
            )
        normalized = _normalized_status(s)
        if normalized is None:
            if self.branch_status is None:
                return self
            return replace(self, branch_status=None)
        lost = _disconnected_buses(
            self.branch_from, self.branch_to, self.n_buses, s
        )
        if lost:
            outaged = tuple(int(k) for k in np.flatnonzero(~s))
            raise IslandingError(
                f"branch outage {list(outaged)} islands the network: "
                f"buses {lost} are disconnected",
                branches=outaged,
            )
        return replace(self, branch_status=normalized)

    def with_branch_outages(self, branch_indices: Sequence[int]) -> "NetworkArrays":
        """Convenience wrapper: take the listed branches out of service.

        Outages compose with any outages already present on ``self``.
        """
        status = self.in_service_mask()
        for index in branch_indices:
            k = int(index)
            if not (0 <= k < self.n_branches):
                raise GridModelError(f"unknown branch index {k}")
            status[k] = False
        return self.with_branch_status(status)

    # ------------------------------------------------------------------
    # PowerNetwork read-API mirror
    # ------------------------------------------------------------------
    @property
    def arrays(self) -> "NetworkArrays":
        """Self — lets consumers write ``network.arrays`` for either type."""
        return self

    @property
    def n_buses(self) -> int:
        """Number of buses ``N``."""
        return self.bus_load_mw.shape[0]

    @property
    def n_branches(self) -> int:
        """Number of branches ``L``."""
        return self.branch_reactance.shape[0]

    @property
    def n_generators(self) -> int:
        """Number of generators."""
        return self.gen_bus.shape[0]

    @property
    def n_measurements(self) -> int:
        """Number of SCADA measurements ``M = 2L + N``."""
        return 2 * self.n_branches + self.n_buses

    @property
    def slack_bus(self) -> int:
        """Index of the slack (angle reference) bus."""
        return self.slack

    @property
    def dfacts_branches(self) -> tuple[int, ...]:
        """Indices of in-service branches equipped with D-FACTS devices."""
        return tuple(int(i) for i in np.flatnonzero(self._active_dfacts()))

    def _active_dfacts(self) -> np.ndarray:
        """Boolean mask of D-FACTS branches that are in service."""
        if self.branch_status is None:
            return self.branch_has_dfacts
        return self.branch_has_dfacts & self.branch_status

    def in_service_mask(self) -> np.ndarray:
        """Per-branch service status as a fresh mutable boolean vector."""
        if self.branch_status is None:
            return np.ones(self.n_branches, dtype=bool)
        return self.branch_status.copy()

    @property
    def n_active_branches(self) -> int:
        """Number of in-service branches."""
        if self.branch_status is None:
            return self.n_branches
        return int(np.count_nonzero(self.branch_status))

    def loads_mw(self) -> np.ndarray:
        """Bus load vector in MW (a fresh mutable copy)."""
        return self.bus_load_mw.copy()

    def reactances(self) -> np.ndarray:
        """Branch reactance vector in per unit (a fresh mutable copy)."""
        return self.branch_reactance.copy()

    def reactance_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """``(x_min, x_max)`` honouring the D-FACTS limits.

        Branches without D-FACTS have ``x_min == x_max == x``, matching the
        per-component :attr:`Branch.reactance_min`/``_max`` convention.
        """
        x = self.branch_reactance
        dfacts = self._active_dfacts()
        x_min = np.where(dfacts, x * self.branch_dfacts_min, x)
        x_max = np.where(dfacts, x * self.branch_dfacts_max, x)
        return x_min, x_max

    def flow_limits_mw(self) -> np.ndarray:
        """Branch flow limit vector ``F^max`` in MW (a fresh mutable copy)."""
        return self.branch_rate_mw.copy()

    def generator_buses(self) -> np.ndarray:
        """Bus index of each generator (a fresh mutable copy)."""
        return np.asarray(self.gen_bus, dtype=int).copy()

    def generator_limits_mw(self) -> tuple[np.ndarray, np.ndarray]:
        """``(p_min, p_max)`` generator limit vectors in MW (copies)."""
        return self.gen_p_min_mw.copy(), self.gen_p_max_mw.copy()

    def generator_costs(self) -> np.ndarray:
        """Linear marginal cost vector in $/MWh (a fresh mutable copy)."""
        return self.gen_cost_per_mwh.copy()

    def total_load_mw(self) -> float:
        """Total system demand in MW."""
        return float(np.sum(self.bus_load_mw))

    def total_generation_capacity_mw(self) -> float:
        """Sum of generator maximum outputs in MW."""
        return float(np.sum(self.gen_p_max_mw))

    def describe(self) -> str:
        """A short human-readable summary of the case."""
        return (
            f"NetworkArrays(name={self.name or 'unnamed'!r}, buses={self.n_buses}, "
            f"branches={self.n_branches}, generators={self.n_generators}, "
            f"dfacts={len(self.dfacts_branches)}, "
            f"total_load={self.total_load_mw():.1f} MW)"
        )


__all__ = ["NetworkArrays", "TopologyCache"]
