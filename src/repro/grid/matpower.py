"""MATPOWER ``.m`` case import.

The paper takes its case data from MATPOWER; this module reads standard
MATPOWER case files (``mpc.baseMVA`` / ``mpc.bus`` / ``mpc.branch`` /
``mpc.gen`` / ``mpc.gencost`` blocks) directly into a validated
:class:`~repro.grid.network.PowerNetwork`, which opens every standard test
case to the scenario engine beyond the four hand-coded ones — any ``.m``
file can be named as a :class:`~repro.engine.spec.GridSpec` case (the
registry resolves names ending in ``.m``, see
:func:`repro.grid.cases.registry.load_case`).

Model mapping
-------------
The library implements the paper's DC model, so only the DC-relevant
columns are consumed:

* ``bus``: ``BUS_I`` (IDs may be non-contiguous; they are mapped to the
  0-based positions of their rows), ``BUS_TYPE`` (exactly one type-3
  reference bus becomes the slack) and ``PD`` (MW load).
* ``branch``: ``F_BUS``/``T_BUS``, the series reactance ``BR_X`` (p.u.),
  ``RATE_A`` (MW; zero or negative means unlimited, MATPOWER's convention)
  and ``BR_STATUS`` (out-of-service rows are dropped).
* ``gen``: ``GEN_BUS``, ``PMAX``/``PMIN`` (MW) and ``GEN_STATUS``
  (out-of-service units are dropped).
* ``gencost``: polynomial model (``MODEL == 2``) rows aligned with ``gen``;
  the *linear* coefficient becomes
  :attr:`~repro.grid.components.Generator.cost_per_mwh`.  Higher-order
  terms are ignored — the library's OPF layers price linear costs only
  (see the note in :mod:`repro.grid.cases.case30`).  Piecewise-linear cost
  rows (``MODEL == 1``) are rejected.

D-FACTS extension
-----------------
MATPOWER has no D-FACTS notion, so the importer honours two optional
MTD extension fields — ``mpc.dfacts`` (1-indexed positions into the
imported, in-service branch list) and ``mpc.dfacts_range`` (``η_max``) —
letting a case file fully describe a paper experiment; explicit
``dfacts_branches=...`` / ``dfacts_range=...`` keyword arguments override
the file.  The bundled ``data/case14.m`` / ``data/case30.m`` carry the
paper's placements and import bit-identically to the hand-coded
``ieee14`` / ``ieee30`` factories (asserted in
``tests/test_grid_matpower.py``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import CaseNotFoundError, GridModelError
from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork
from repro.utils.units import DEFAULT_BASE_MVA

#: Directory holding the MATPOWER case files shipped with the package.
BUNDLED_CASE_DIR = Path(__file__).resolve().parent / "data"

_MATRIX_RE = re.compile(r"mpc\.(\w+)\s*=\s*\[(.*?)\]\s*;", re.DOTALL)
_SCALAR_RE = re.compile(r"mpc\.(\w+)\s*=\s*([^\[;\n]+?)\s*;")
_FUNCTION_RE = re.compile(r"function\s+\w+\s*=\s*(\w+)")

#: MATPOWER reference-bus type code (``BUS_TYPE == 3``).
_REF_BUS_TYPE = 3


@dataclass(frozen=True)
class MatpowerCase:
    """The raw numeric blocks of one parsed MATPOWER case.

    Attributes
    ----------
    name:
        The case function name (``function mpc = case14`` → ``"case14"``),
        empty when the file has no function header.
    base_mva:
        The system MVA base (``mpc.baseMVA``).
    bus, branch, gen, gencost:
        The numeric matrices, one row per record, in file order;
        ``gen``/``gencost`` may be empty.
    dfacts:
        1-indexed D-FACTS branch positions from the ``mpc.dfacts``
        extension field (empty when absent).
    dfacts_range:
        ``η_max`` from ``mpc.dfacts_range`` (``None`` when absent).
    """

    name: str
    base_mva: float
    bus: np.ndarray
    branch: np.ndarray
    gen: np.ndarray
    gencost: np.ndarray
    dfacts: tuple[int, ...] = ()
    dfacts_range: float | None = None


def _strip_comments(text: str) -> str:
    """Remove MATLAB ``%`` comments (to end of line)."""
    return "\n".join(line.split("%", 1)[0] for line in text.splitlines())


def _parse_matrix(name: str, body: str) -> np.ndarray:
    """Parse the body of a ``[...]`` block into a 2-D float array."""
    rows: list[list[float]] = []
    for chunk in re.split(r"[;\n]", body):
        tokens = chunk.replace(",", " ").split()
        if not tokens:
            continue
        try:
            rows.append([float(token) for token in tokens])
        except ValueError as exc:
            raise GridModelError(
                f"mpc.{name}: cannot parse row {chunk.strip()!r}: {exc}"
            ) from exc
    if not rows:
        return np.empty((0, 0))
    width = len(rows[0])
    for i, row in enumerate(rows):
        if len(row) != width:
            raise GridModelError(
                f"mpc.{name}: row {i + 1} has {len(row)} columns, expected {width}"
            )
    return np.asarray(rows, dtype=float)


def parse_matpower(text: str) -> MatpowerCase:
    """Parse MATPOWER ``.m`` case text into its numeric blocks.

    Only ``mpc.<field>`` assignments are consumed; the surrounding MATLAB
    syntax (function header, comments) is tolerated and ignored.

    Raises
    ------
    GridModelError
        If a required block (``bus``, ``branch``) is missing or malformed.
    """
    stripped = _strip_comments(text)
    matrices: dict[str, np.ndarray] = {}
    for match in _MATRIX_RE.finditer(stripped):
        matrices[match.group(1)] = _parse_matrix(match.group(1), match.group(2))
    scalars: dict[str, str] = {}
    for match in _SCALAR_RE.finditer(stripped):
        if match.group(1) not in matrices:
            scalars[match.group(1)] = match.group(2).strip().strip("'\"")

    if "bus" not in matrices or matrices["bus"].size == 0:
        raise GridModelError("MATPOWER case has no (non-empty) mpc.bus block")
    if "branch" not in matrices or matrices["branch"].size == 0:
        raise GridModelError("MATPOWER case has no (non-empty) mpc.branch block")

    function = _FUNCTION_RE.search(text)
    base_mva = DEFAULT_BASE_MVA
    if "baseMVA" in scalars:
        try:
            base_mva = float(scalars["baseMVA"])
        except ValueError as exc:
            raise GridModelError(
                f"cannot parse mpc.baseMVA = {scalars['baseMVA']!r}"
            ) from exc

    dfacts: tuple[int, ...] = ()
    if "dfacts" in matrices and matrices["dfacts"].size:
        dfacts = tuple(int(v) for v in matrices["dfacts"].ravel())
    dfacts_range: float | None = None
    if "dfacts_range" in scalars:
        try:
            dfacts_range = float(scalars["dfacts_range"])
        except ValueError as exc:
            raise GridModelError(
                f"cannot parse mpc.dfacts_range = {scalars['dfacts_range']!r}"
            ) from exc

    empty = np.empty((0, 0))
    return MatpowerCase(
        name=function.group(1) if function else "",
        base_mva=base_mva,
        bus=matrices["bus"],
        branch=matrices["branch"],
        gen=matrices.get("gen", empty),
        gencost=matrices.get("gencost", empty),
        dfacts=dfacts,
        dfacts_range=dfacts_range,
    )


def _column(matrix: np.ndarray, index: int, default: float | None = None) -> np.ndarray:
    """Column ``index`` of ``matrix``, or a constant default when absent."""
    if matrix.ndim == 2 and matrix.shape[1] > index:
        return matrix[:, index]
    if default is None:
        raise GridModelError(
            f"MATPOWER matrix with {matrix.shape[1] if matrix.ndim == 2 else 0} "
            f"columns is missing required column {index + 1}"
        )
    return np.full(matrix.shape[0] if matrix.ndim == 2 else 0, default)


def _linear_costs(case: MatpowerCase, gen_mask: np.ndarray) -> np.ndarray:
    """Per-generator linear cost ($/MWh) from the polynomial gencost block."""
    n_gen = int(case.gen.shape[0]) if case.gen.ndim == 2 else 0
    if case.gencost.size == 0:
        return np.zeros(int(np.sum(gen_mask)))
    gencost = case.gencost
    if gencost.shape[0] < n_gen:
        raise GridModelError(
            f"mpc.gencost has {gencost.shape[0]} rows for {n_gen} generators"
        )
    costs = []
    for row_index in np.flatnonzero(gen_mask):
        row = gencost[row_index]
        model = int(row[0])
        if model != 2:
            raise GridModelError(
                f"mpc.gencost row {row_index + 1}: only polynomial cost rows "
                f"(MODEL = 2) are supported, got MODEL = {model}"
            )
        n_cost = int(row[3])
        coeffs = row[4 : 4 + n_cost]
        if coeffs.shape[0] != n_cost:
            raise GridModelError(
                f"mpc.gencost row {row_index + 1}: NCOST = {n_cost} but only "
                f"{coeffs.shape[0]} coefficients are present"
            )
        # Coefficients are highest order first; the g^1 term is the linear
        # $/MWh price (higher-order terms are ignored, see module docstring).
        costs.append(float(coeffs[-2]) if n_cost >= 2 else 0.0)
    return np.asarray(costs, dtype=float)


def network_from_matpower(
    source: str | MatpowerCase,
    dfacts_branches: Sequence[int] | None = None,
    dfacts_range: float | None = None,
    name: str | None = None,
) -> PowerNetwork:
    """Build a validated :class:`PowerNetwork` from a MATPOWER case.

    Parameters
    ----------
    source:
        Raw ``.m`` file text or an already parsed :class:`MatpowerCase`.
    dfacts_branches:
        1-indexed positions (in the imported, in-service branch list) of the
        branches carrying D-FACTS devices; overrides the file's
        ``mpc.dfacts`` extension field.
    dfacts_range:
        ``η_max`` of the devices; overrides ``mpc.dfacts_range``
        (default 0.5, the paper's setting, when neither is given).
    name:
        Network name; defaults to the case function name.

    Raises
    ------
    GridModelError
        On malformed case data (duplicate bus IDs, missing reference bus,
        unknown endpoints, unsupported cost models, ...).
    """
    case = parse_matpower(source) if isinstance(source, str) else source

    bus_ids = [int(v) for v in _column(case.bus, 0)]
    position: dict[int, int] = {}
    for pos, bus_id in enumerate(bus_ids):
        if bus_id in position:
            raise GridModelError(f"duplicate bus ID {bus_id} in mpc.bus")
        position[bus_id] = pos
    bus_types = [int(v) for v in _column(case.bus, 1, default=1.0)]
    slack_ids = [bus_ids[i] for i, t in enumerate(bus_types) if t == _REF_BUS_TYPE]
    if len(slack_ids) != 1:
        raise GridModelError(
            f"expected exactly one reference bus (BUS_TYPE = 3), found {len(slack_ids)}"
        )
    loads = _column(case.bus, 2, default=0.0)
    buses = tuple(
        Bus(
            index=position[bus_id],
            load_mw=float(loads[i]),
            name=f"Bus {bus_id}",
            is_slack=(bus_id == slack_ids[0]),
        )
        for i, bus_id in enumerate(bus_ids)
    )

    status = _column(case.branch, 10, default=1.0)
    rates = _column(case.branch, 5, default=0.0)
    branches: list[Branch] = []
    for row_index in range(case.branch.shape[0]):
        if status[row_index] == 0:
            continue
        f_id = int(case.branch[row_index, 0])
        t_id = int(case.branch[row_index, 1])
        if f_id not in position or t_id not in position:
            raise GridModelError(
                f"mpc.branch row {row_index + 1} references unknown bus "
                f"({f_id} -> {t_id})"
            )
        rate = float(rates[row_index])
        branches.append(
            Branch(
                index=len(branches),
                from_bus=position[f_id],
                to_bus=position[t_id],
                reactance=float(case.branch[row_index, 3]),
                # MATPOWER: RATE_A <= 0 disables the limit.
                rate_mw=rate if rate > 0 else float("inf"),
                name=f"Line {len(branches) + 1} ({f_id}-{t_id})",
            )
        )
    if not branches:
        raise GridModelError("MATPOWER case has no in-service branches")

    if case.gen.size:
        gen_status = _column(case.gen, 7, default=1.0)
        gen_mask = gen_status > 0
        p_max = _column(case.gen, 8, default=0.0)
        p_min = _column(case.gen, 9, default=0.0)
        costs = _linear_costs(case, gen_mask)
        generators = []
        for g, row_index in enumerate(np.flatnonzero(gen_mask)):
            gen_bus_id = int(case.gen[row_index, 0])
            if gen_bus_id not in position:
                raise GridModelError(
                    f"mpc.gen row {row_index + 1} references unknown bus {gen_bus_id}"
                )
            generators.append(
                Generator(
                    index=g,
                    bus=position[gen_bus_id],
                    p_max_mw=float(p_max[row_index]),
                    p_min_mw=max(0.0, float(p_min[row_index])),
                    cost_per_mwh=float(costs[g]),
                    name=f"Gen bus {gen_bus_id}",
                )
            )
        generators = tuple(generators)
    else:
        generators = ()

    network = PowerNetwork.from_components(
        buses=buses,
        branches=branches,
        generators=generators,
        base_mva=case.base_mva,
        name=case.name if name is None else name,
    )

    selected = case.dfacts if dfacts_branches is None else tuple(dfacts_branches)
    if selected:
        eta = dfacts_range
        if eta is None:
            eta = 0.5 if case.dfacts_range is None else case.dfacts_range
        zero_based = []
        for number in selected:
            index = int(number) - 1
            if index < 0 or index >= len(branches):
                raise GridModelError(
                    f"D-FACTS branch number {number} is outside 1..{len(branches)}"
                )
            zero_based.append(index)
        network = network.with_dfacts_on(zero_based, 1.0 - eta, 1.0 + eta)
    return network


def load_matpower_case(path: str | Path, **kwargs) -> PowerNetwork:
    """Read a MATPOWER ``.m`` file into a :class:`PowerNetwork`.

    Keyword arguments are forwarded to :func:`network_from_matpower`
    (``dfacts_branches``, ``dfacts_range``, ``name``).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CaseNotFoundError(f"cannot read MATPOWER case file {path}: {exc}") from exc
    try:
        return network_from_matpower(text, **kwargs)
    except GridModelError as exc:
        raise GridModelError(f"{path}: {exc}") from exc


def bundled_matpower_cases() -> tuple[str, ...]:
    """File names of the MATPOWER cases shipped with the package."""
    if not BUNDLED_CASE_DIR.is_dir():
        return ()
    return tuple(sorted(p.name for p in BUNDLED_CASE_DIR.glob("*.m")))


def resolve_case_file(reference: str | Path) -> Path:
    """Resolve a ``.m`` case reference to a file path.

    An existing filesystem path wins.  *Bare* names (no directory
    component) additionally fall back to the bundled cases
    (:data:`BUNDLED_CASE_DIR`), so ``"case30.m"`` works anywhere; a missing
    explicit path is an error — silently substituting a bundled file of the
    same name would load the wrong grid data.
    """
    path = Path(reference)
    if path.is_file():
        return path
    if str(reference) == path.name:
        bundled = BUNDLED_CASE_DIR / path.name
        if bundled.is_file():
            return bundled
        raise CaseNotFoundError(
            f"MATPOWER case file {str(reference)!r} not found; bundled cases: "
            f"{', '.join(bundled_matpower_cases()) or '(none)'}"
        )
    raise CaseNotFoundError(f"MATPOWER case file {str(reference)!r} does not exist")


__all__ = [
    "MatpowerCase",
    "parse_matpower",
    "network_from_matpower",
    "load_matpower_case",
    "bundled_matpower_cases",
    "resolve_case_file",
    "BUNDLED_CASE_DIR",
]
