"""Import / export of networks as MATPOWER-like dictionaries.

The paper obtains its case data from MATPOWER.  To stay dependency free we
ship the benchmark cases as Python modules (:mod:`repro.grid.cases`), but
this module provides a lossless dictionary representation compatible with
JSON so that users can persist modified cases or import their own data
easily.

The dictionary schema intentionally mirrors the MATPOWER ``mpc`` struct
field names (``bus``, ``branch``, ``gen``, ``gencost``) to ease manual
translation of existing cases, but uses explicit keys per record instead of
positional columns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import GridModelError
from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork

SCHEMA_VERSION = 1


def network_to_dict(network: PowerNetwork) -> dict[str, Any]:
    """Serialise ``network`` into a JSON-compatible dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "name": network.name,
        "base_mva": network.base_mva,
        "bus": [
            {
                "index": bus.index,
                "load_mw": bus.load_mw,
                "name": bus.name,
                "is_slack": bus.is_slack,
            }
            for bus in network.buses
        ],
        "branch": [
            {
                "index": branch.index,
                "from_bus": branch.from_bus,
                "to_bus": branch.to_bus,
                "reactance": branch.reactance,
                "rate_mw": branch.rate_mw if branch.rate_mw != float("inf") else None,
                "has_dfacts": branch.has_dfacts,
                "dfacts_min_factor": branch.dfacts_min_factor,
                "dfacts_max_factor": branch.dfacts_max_factor,
                "in_service": branch.in_service,
                "name": branch.name,
            }
            for branch in network.branches
        ],
        "gen": [
            {
                "index": gen.index,
                "bus": gen.bus,
                "p_min_mw": gen.p_min_mw,
                "p_max_mw": gen.p_max_mw,
                "cost_per_mwh": gen.cost_per_mwh,
                "in_service": gen.in_service,
                "name": gen.name,
            }
            for gen in network.generators
        ],
    }


def _reject_duplicate_indices(records: Any, kind: str, key: str = "index") -> None:
    """Raise a targeted error when two records claim the same index.

    Without this check a duplicated index surfaces much later, inside the
    network's structural validation, as an opaque "indices must form the
    contiguous range" message listing every index; here the offending
    record is named directly.
    """
    seen: set[int] = set()
    for item in records:
        try:
            index = int(item[key])
        except (KeyError, TypeError, ValueError):
            continue  # missing/malformed fields are reported by the parse below
        if index in seen:
            raise GridModelError(
                f"duplicate {kind} index {index} in case dictionary"
            )
        seen.add(index)


def network_from_dict(data: Mapping[str, Any]) -> PowerNetwork:
    """Reconstruct a :class:`PowerNetwork` from :func:`network_to_dict` output.

    Raises
    ------
    GridModelError
        On schema mismatches, missing fields, or duplicated bus/branch/
        generator indices (reported with the offending index).
    """
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise GridModelError(
            f"unsupported schema version {version}; this library supports {SCHEMA_VERSION}"
        )
    _reject_duplicate_indices(data.get("bus", ()), "bus")
    _reject_duplicate_indices(data.get("branch", ()), "branch")
    _reject_duplicate_indices(data.get("gen", ()), "generator")

    def _by_index(records: Any) -> list:
        # PowerNetwork requires component tuples ordered by index; accept
        # dictionaries whose records are listed in any order.
        try:
            return sorted(records, key=lambda item: int(item["index"]))
        except (KeyError, TypeError, ValueError):
            return list(records)  # malformed fields are reported below

    try:
        buses = tuple(
            Bus(
                index=int(item["index"]),
                load_mw=float(item.get("load_mw", 0.0)),
                name=str(item.get("name", "")),
                is_slack=bool(item.get("is_slack", False)),
            )
            for item in _by_index(data["bus"])
        )
        branches = tuple(
            Branch(
                index=int(item["index"]),
                from_bus=int(item["from_bus"]),
                to_bus=int(item["to_bus"]),
                reactance=float(item["reactance"]),
                rate_mw=float("inf") if item.get("rate_mw") is None else float(item["rate_mw"]),
                has_dfacts=bool(item.get("has_dfacts", False)),
                dfacts_min_factor=float(item.get("dfacts_min_factor", 1.0)),
                dfacts_max_factor=float(item.get("dfacts_max_factor", 1.0)),
                in_service=bool(item.get("in_service", True)),
                name=str(item.get("name", "")),
            )
            for item in _by_index(data["branch"])
        )
        generators = tuple(
            Generator(
                index=int(item["index"]),
                bus=int(item["bus"]),
                p_min_mw=float(item.get("p_min_mw", 0.0)),
                p_max_mw=float(item["p_max_mw"]),
                cost_per_mwh=float(item.get("cost_per_mwh", 0.0)),
                in_service=bool(item.get("in_service", True)),
                name=str(item.get("name", "")),
            )
            for item in _by_index(data["gen"])
        )
    except KeyError as exc:
        raise GridModelError(f"missing required field in case dictionary: {exc}") from exc
    return PowerNetwork(
        buses=buses,
        branches=branches,
        generators=generators,
        base_mva=float(data.get("base_mva", 100.0)),
        name=str(data.get("name", "")),
    )


def save_network(network: PowerNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as a JSON document."""
    path = Path(path)
    path.write_text(json.dumps(network_to_dict(network), indent=2, sort_keys=True))


def load_network(path: str | Path) -> PowerNetwork:
    """Read a network previously written by :func:`save_network`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise GridModelError(f"{path} is not valid JSON: {exc}") from exc
    return network_from_dict(data)


__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "SCHEMA_VERSION",
]
