"""The IEEE 14-bus system with the paper's evaluation settings.

Topology and branch reactances follow the standard IEEE 14-bus test system
(MATPOWER ``case14``).  The generator fleet, cost coefficients, D-FACTS
placement and branch flow limits follow Section VII-A of the paper:

* Generators at buses 1, 2, 3, 6 and 8 with maximum outputs
  300, 50, 30, 50 and 20 MW and linear costs 20, 30, 40, 50 and 35 $/MWh
  (Table IV).
* D-FACTS devices on branches ``L_D = {1, 5, 9, 11, 17, 19}`` (1-indexed in
  MATPOWER branch order), with ``η_max = 0.5``.
* Branch flow limits of 160 MW on line 1 and 60 MW on every other line.
* Bus loads default to the MATPOWER case14 values (259 MW total); the
  dynamic-load experiments rescale them with an hourly profile.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork

#: Bus active-power loads in MW (MATPOWER case14 defaults), bus 1 first.
_LOADS_MW = (
    0.0,   # bus 1
    21.7,  # bus 2
    94.2,  # bus 3
    47.8,  # bus 4
    7.6,   # bus 5
    11.2,  # bus 6
    0.0,   # bus 7
    0.0,   # bus 8
    29.5,  # bus 9
    9.0,   # bus 10
    3.5,   # bus 11
    6.1,   # bus 12
    13.5,  # bus 13
    14.9,  # bus 14
)

#: Branches in MATPOWER case14 order: (from bus, to bus, reactance p.u.).
_BRANCHES = (
    (1, 2, 0.05917),
    (1, 5, 0.22304),
    (2, 3, 0.19797),
    (2, 4, 0.17632),
    (2, 5, 0.17388),
    (3, 4, 0.17103),
    (4, 5, 0.04211),
    (4, 7, 0.20912),
    (4, 9, 0.55618),
    (5, 6, 0.25202),
    (6, 11, 0.19890),
    (6, 12, 0.25581),
    (6, 13, 0.13027),
    (7, 8, 0.17615),
    (7, 9, 0.11001),
    (9, 10, 0.08450),
    (9, 14, 0.27038),
    (10, 11, 0.19207),
    (12, 13, 0.19988),
    (13, 14, 0.34802),
)

#: Generators per Table IV: (bus, p_max_mw, cost $/MWh).
_GENERATORS = (
    (1, 300.0, 20.0),
    (2, 50.0, 30.0),
    (3, 30.0, 40.0),
    (6, 50.0, 50.0),
    (8, 20.0, 35.0),
)

#: D-FACTS-equipped branches (1-indexed, MATPOWER branch order) per the paper.
DEFAULT_DFACTS_BRANCHES = (1, 5, 9, 11, 17, 19)

#: Paper's branch flow limits: 160 MW on line 1, 60 MW elsewhere.
_LINE1_LIMIT_MW = 160.0
_OTHER_LIMIT_MW = 60.0


def case14(
    dfacts_branches: Sequence[int] | None = None,
    dfacts_range: float = 0.5,
    line1_limit_mw: float = _LINE1_LIMIT_MW,
    other_limit_mw: float = _OTHER_LIMIT_MW,
) -> PowerNetwork:
    """Build the IEEE 14-bus network with the paper's settings.

    Parameters
    ----------
    dfacts_branches:
        1-indexed branch numbers (MATPOWER ordering) carrying D-FACTS
        devices.  Defaults to the paper's set ``{1, 5, 9, 11, 17, 19}``.
    dfacts_range:
        ``η_max``; reactances may move within ``[(1−η)x, (1+η)x]``.
    line1_limit_mw, other_limit_mw:
        Branch flow limits (paper: 160 MW for line 1, 60 MW elsewhere).

    Returns
    -------
    PowerNetwork
        The validated 14-bus network (bus 1 is the slack).
    """
    if dfacts_branches is None:
        dfacts_branches = DEFAULT_DFACTS_BRANCHES
    dfacts_zero_based = _to_zero_based(dfacts_branches, len(_BRANCHES))

    buses = tuple(
        Bus(index=i, load_mw=_LOADS_MW[i], name=f"Bus {i + 1}", is_slack=(i == 0))
        for i in range(len(_LOADS_MW))
    )
    branches = []
    for idx, (f, t, x) in enumerate(_BRANCHES):
        rate = line1_limit_mw if idx == 0 else other_limit_mw
        branch = Branch(
            index=idx,
            from_bus=f - 1,
            to_bus=t - 1,
            reactance=x,
            rate_mw=rate,
            name=f"Line {idx + 1} ({f}-{t})",
        )
        if idx in dfacts_zero_based:
            branch = branch.with_dfacts(1.0 - dfacts_range, 1.0 + dfacts_range)
        branches.append(branch)
    generators = tuple(
        Generator(
            index=g,
            bus=bus - 1,
            p_max_mw=p_max,
            cost_per_mwh=cost,
            name=f"Gen bus {bus}",
        )
        for g, (bus, p_max, cost) in enumerate(_GENERATORS)
    )
    return PowerNetwork.from_components(
        buses=buses,
        branches=tuple(branches),
        generators=generators,
        name="ieee14",
    )


def _to_zero_based(branch_numbers: Iterable[int], n_branches: int) -> set[int]:
    """Convert 1-indexed MATPOWER branch numbers to 0-based indices."""
    zero_based = set()
    for number in branch_numbers:
        index = int(number) - 1
        if index < 0 or index >= n_branches:
            raise ValueError(
                f"branch number {number} is outside 1..{n_branches}"
            )
        zero_based.add(index)
    return zero_based


__all__ = ["case14", "DEFAULT_DFACTS_BRANCHES"]
