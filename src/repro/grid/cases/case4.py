"""The 4-bus system of the paper's motivating example (Fig. 3).

The topology, loads and generation match the classic 4-bus Grainger &
Stevenson system distributed with MATPOWER as ``case4gs`` (the paper cites
MATPOWER [27] as the source of the example):

* Buses 1-4 with loads 50, 170, 200 and 80 MW.
* Four lines: 1-2, 1-3, 2-4 and 3-4.
* Two generators, at bus 1 and bus 4.

With the reactances below and the dispatch ``G1 = 350`` MW, ``G2 = 150`` MW,
the DC branch flows are 126.56, 173.44, -43.44 and -26.56 MW and the OPF
cost is $1.15 x 10^4 — exactly the pre-perturbation values of Table II.

The branch flow limits are not stated in the paper.  We choose limits that
are slightly above the pre-perturbation flows so that the single-line MTD
perturbations of the motivating example (Table III) force a generator
redispatch and therefore a strictly positive operational cost, reproducing
the qualitative behaviour of Table III (every perturbation increases the OPF
cost; perturbing line 3 is cheapest).
"""

from __future__ import annotations

from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork

#: Loads at buses 1..4 in MW (Fig. 3 / MATPOWER case4gs).
_LOADS_MW = (50.0, 170.0, 200.0, 80.0)

#: Branch terminals (1-indexed as in the paper) and series reactances (p.u.).
_BRANCHES = (
    # (from, to, reactance, rate_mw)
    (1, 2, 0.0504, 128.0),
    (1, 3, 0.0372, 174.0),
    (2, 4, 0.0372, 60.0),
    (3, 4, 0.0636, 60.0),
)

#: Generators: (bus, p_max_mw, cost $/MWh).
_GENERATORS = (
    (1, 350.0, 20.0),
    (4, 200.0, 30.0),
)


def case4gs(
    dfacts_all_lines: bool = True,
    dfacts_range: float = 0.5,
) -> PowerNetwork:
    """Build the 4-bus motivating-example network.

    Parameters
    ----------
    dfacts_all_lines:
        When true (default), every line carries a D-FACTS device so that the
        single-line perturbations ``Δx^(1..4)`` of the motivating example can
        all be realised.
    dfacts_range:
        Symmetric adjustment range ``η_max`` of the D-FACTS devices, i.e.
        reactances may move within ``[(1 − η_max) x, (1 + η_max) x]``.

    Returns
    -------
    PowerNetwork
        The validated 4-bus network (bus 1 is the slack).
    """
    buses = tuple(
        Bus(index=i, load_mw=_LOADS_MW[i], name=f"Bus {i + 1}", is_slack=(i == 0))
        for i in range(4)
    )
    branches = []
    for idx, (f, t, x, rate) in enumerate(_BRANCHES):
        branch = Branch(
            index=idx,
            from_bus=f - 1,
            to_bus=t - 1,
            reactance=x,
            rate_mw=rate,
            name=f"Line {idx + 1}",
        )
        if dfacts_all_lines:
            branch = branch.with_dfacts(1.0 - dfacts_range, 1.0 + dfacts_range)
        branches.append(branch)
    generators = tuple(
        Generator(
            index=g,
            bus=bus - 1,
            p_max_mw=p_max,
            cost_per_mwh=cost,
            name=f"G{g + 1}",
        )
        for g, (bus, p_max, cost) in enumerate(_GENERATORS)
    )
    return PowerNetwork.from_components(
        buses=buses,
        branches=tuple(branches),
        generators=generators,
        name="case4gs",
    )


__all__ = ["case4gs"]
