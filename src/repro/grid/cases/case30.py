"""The IEEE 30-bus system used for the scalability result (Fig. 6(b)).

The topology (30 buses, 41 branches) and branch reactances follow the
standard IEEE 30-bus test system.  The paper uses the MATPOWER ``case30``
defaults; since we cannot redistribute the MATPOWER data files, the values
below are a re-encoding of the published IEEE 30-bus parameters.  Small
numerical deviations from the MATPOWER file (for example in the quadratic
generator-cost coefficients, which we replace with linear costs) do not
affect the qualitative result reproduced from the paper — that MTD
effectiveness increases monotonically with the subspace angle — because that
relationship is a property of the measurement-matrix geometry, not of the
exact cost coefficients.

Generator placement follows MATPOWER ``case30`` (buses 1, 2, 13, 22, 23 and
27).  D-FACTS devices are installed on ten branches spread across the
network; the paper does not state its 30-bus D-FACTS placement.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork

#: Bus loads in MW (standard IEEE 30-bus data; ~189 MW total).
_LOADS_MW = {
    2: 21.7,
    3: 2.4,
    4: 7.6,
    7: 22.8,
    8: 30.0,
    10: 5.8,
    12: 11.2,
    14: 6.2,
    15: 8.2,
    16: 3.5,
    17: 9.0,
    18: 3.2,
    19: 9.5,
    20: 2.2,
    21: 17.5,
    23: 3.2,
    24: 8.7,
    26: 3.5,
    29: 2.4,
    30: 10.6,
}

#: Branches: (from bus, to bus, reactance p.u., rate MW), IEEE 30-bus order.
_BRANCHES = (
    (1, 2, 0.0575, 130.0),
    (1, 3, 0.1852, 130.0),
    (2, 4, 0.1737, 65.0),
    (3, 4, 0.0379, 130.0),
    (2, 5, 0.1983, 130.0),
    (2, 6, 0.1763, 65.0),
    (4, 6, 0.0414, 90.0),
    (5, 7, 0.1160, 70.0),
    (6, 7, 0.0820, 130.0),
    (6, 8, 0.0420, 32.0),
    (6, 9, 0.2080, 65.0),
    (6, 10, 0.5560, 32.0),
    (9, 11, 0.2080, 65.0),
    (9, 10, 0.1100, 65.0),
    (4, 12, 0.2560, 65.0),
    (12, 13, 0.1400, 65.0),
    (12, 14, 0.2559, 32.0),
    (12, 15, 0.1304, 32.0),
    (12, 16, 0.1987, 32.0),
    (14, 15, 0.1997, 16.0),
    (16, 17, 0.1923, 16.0),
    (15, 18, 0.2185, 16.0),
    (18, 19, 0.1292, 16.0),
    (19, 20, 0.0680, 32.0),
    (10, 20, 0.2090, 32.0),
    (10, 17, 0.0845, 32.0),
    (10, 21, 0.0749, 32.0),
    (10, 22, 0.1499, 32.0),
    (21, 22, 0.0236, 32.0),
    (15, 23, 0.2020, 16.0),
    (22, 24, 0.1790, 16.0),
    (23, 24, 0.2700, 16.0),
    (24, 25, 0.3292, 16.0),
    (25, 26, 0.3800, 16.0),
    (25, 27, 0.2087, 16.0),
    (28, 27, 0.3960, 65.0),
    (27, 29, 0.4153, 16.0),
    (27, 30, 0.6027, 16.0),
    (29, 30, 0.4533, 16.0),
    (8, 28, 0.2000, 32.0),
    (6, 28, 0.0599, 32.0),
)

#: Generators: (bus, p_max_mw, cost $/MWh).  Placement follows MATPOWER
#: case30; the linear cost ordering makes bus-1 generation cheapest so the
#: OPF exhibits congestion-driven redispatch as in the 14-bus case.
_GENERATORS = (
    (1, 80.0, 20.0),
    (2, 80.0, 25.0),
    (13, 40.0, 45.0),
    (22, 50.0, 35.0),
    (23, 30.0, 50.0),
    (27, 55.0, 40.0),
)

#: Default D-FACTS placement: ten branches distributed across the network
#: (1-indexed, branch order above).
DEFAULT_DFACTS_BRANCHES = (1, 4, 7, 10, 14, 18, 25, 27, 36, 41)


def case30(
    dfacts_branches: Sequence[int] | None = None,
    dfacts_range: float = 0.5,
) -> PowerNetwork:
    """Build the IEEE 30-bus network.

    Parameters
    ----------
    dfacts_branches:
        1-indexed branch numbers carrying D-FACTS devices; defaults to
        :data:`DEFAULT_DFACTS_BRANCHES`.
    dfacts_range:
        ``η_max`` of the D-FACTS devices (default 0.5 as in the paper).

    Returns
    -------
    PowerNetwork
        The validated 30-bus network (bus 1 is the slack).
    """
    if dfacts_branches is None:
        dfacts_branches = DEFAULT_DFACTS_BRANCHES
    dfacts_zero_based = _to_zero_based(dfacts_branches, len(_BRANCHES))

    buses = tuple(
        Bus(
            index=i,
            load_mw=_LOADS_MW.get(i + 1, 0.0),
            name=f"Bus {i + 1}",
            is_slack=(i == 0),
        )
        for i in range(30)
    )
    branches = []
    for idx, (f, t, x, rate) in enumerate(_BRANCHES):
        branch = Branch(
            index=idx,
            from_bus=f - 1,
            to_bus=t - 1,
            reactance=x,
            rate_mw=rate,
            name=f"Line {idx + 1} ({f}-{t})",
        )
        if idx in dfacts_zero_based:
            branch = branch.with_dfacts(1.0 - dfacts_range, 1.0 + dfacts_range)
        branches.append(branch)
    generators = tuple(
        Generator(
            index=g,
            bus=bus - 1,
            p_max_mw=p_max,
            cost_per_mwh=cost,
            name=f"Gen bus {bus}",
        )
        for g, (bus, p_max, cost) in enumerate(_GENERATORS)
    )
    return PowerNetwork.from_components(
        buses=buses,
        branches=tuple(branches),
        generators=generators,
        name="ieee30",
    )


def _to_zero_based(branch_numbers: Iterable[int], n_branches: int) -> set[int]:
    """Convert 1-indexed branch numbers to 0-based indices."""
    zero_based = set()
    for number in branch_numbers:
        index = int(number) - 1
        if index < 0 or index >= n_branches:
            raise ValueError(f"branch number {number} is outside 1..{n_branches}")
        zero_based.add(index)
    return zero_based


__all__ = ["case30", "DEFAULT_DFACTS_BRANCHES"]
