"""Synthetic random network generator.

The generator produces connected meshed networks of arbitrary size with
plausible parameter ranges.  It is used by property-based tests (invariants
of power flow, state estimation and the MTD subspace analysis must hold on
*any* valid network, not only the IEEE cases) and by scalability studies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork
from repro.utils.rng import as_generator


def synthetic_case(
    n_buses: int,
    extra_edge_factor: float = 0.5,
    n_generators: int | None = None,
    dfacts_fraction: float = 0.3,
    dfacts_range: float = 0.5,
    load_range_mw: tuple[float, float] = (10.0, 60.0),
    reactance_range: tuple[float, float] = (0.05, 0.5),
    capacity_margin: float = 1.6,
    rate_scale: float = 1.0,
    seed: int | np.random.Generator | None = 0,
) -> PowerNetwork:
    """Generate a random connected network.

    The network is built from a random spanning tree (guaranteeing
    connectivity) plus ``extra_edge_factor * n_buses`` additional random
    edges, which creates the loops that make power-flow redistribution — and
    hence the MTD cost mechanism — non-trivial.

    Parameters
    ----------
    n_buses:
        Number of buses (at least 3).
    extra_edge_factor:
        Additional edges per bus beyond the spanning tree.
    n_generators:
        Number of generators; defaults to ``max(2, n_buses // 5)``.
    dfacts_fraction:
        Fraction of branches equipped with D-FACTS devices.
    dfacts_range:
        Symmetric reactance adjustment range of the D-FACTS devices.
    load_range_mw:
        Uniform range from which bus loads are drawn (the slack bus carries
        no load).
    reactance_range:
        Uniform range from which branch reactances are drawn.
    capacity_margin:
        Total generation capacity as a multiple of total load.
    rate_scale:
        Multiplier on the heuristic uniform line rating.  The heuristic
        tightens with network size; large cases (300+ buses) need a scale
        above 1 to remain dispatchable from their handful of generator
        buses while smaller cases keep ``1.0`` to preserve congestion.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    PowerNetwork
        A validated random network named ``synthetic<N>``.
    """
    if n_buses < 3:
        raise ConfigurationError(f"n_buses must be at least 3, got {n_buses}")
    if not (0.0 <= dfacts_fraction <= 1.0):
        raise ConfigurationError(
            f"dfacts_fraction must be within [0, 1], got {dfacts_fraction}"
        )
    if load_range_mw[0] < 0 or load_range_mw[0] > load_range_mw[1]:
        raise ConfigurationError(f"invalid load range {load_range_mw}")
    if reactance_range[0] <= 0 or reactance_range[0] > reactance_range[1]:
        raise ConfigurationError(f"invalid reactance range {reactance_range}")
    if capacity_margin <= 1.0:
        raise ConfigurationError(
            f"capacity_margin must exceed 1.0, got {capacity_margin}"
        )
    if rate_scale <= 0.0:
        raise ConfigurationError(f"rate_scale must be positive, got {rate_scale}")

    rng = as_generator(seed)

    edges = _random_connected_edges(n_buses, extra_edge_factor, rng)

    loads = rng.uniform(load_range_mw[0], load_range_mw[1], size=n_buses)
    loads[0] = 0.0  # keep the slack bus load-free, as in the IEEE cases
    buses = tuple(
        Bus(index=i, load_mw=float(loads[i]), name=f"Bus {i + 1}", is_slack=(i == 0))
        for i in range(n_buses)
    )

    n_branches = len(edges)
    reactances = rng.uniform(reactance_range[0], reactance_range[1], size=n_branches)
    total_load = float(np.sum(loads))
    # Generous limits: each line can carry a sizable share of the total load,
    # scaled down with network size so congestion is still possible.
    rate = rate_scale * max(40.0, 1.5 * total_load / max(4, n_branches // 2))
    n_dfacts = int(round(dfacts_fraction * n_branches))
    dfacts_set = set(rng.permutation(n_branches)[:n_dfacts].tolist())
    branches = []
    for idx, (f, t) in enumerate(edges):
        branch = Branch(
            index=idx,
            from_bus=int(f),
            to_bus=int(t),
            reactance=float(reactances[idx]),
            rate_mw=rate,
            name=f"Line {idx + 1}",
        )
        if idx in dfacts_set:
            branch = branch.with_dfacts(1.0 - dfacts_range, 1.0 + dfacts_range)
        branches.append(branch)

    if n_generators is None:
        n_generators = max(2, n_buses // 5)
    n_generators = min(n_generators, n_buses)
    gen_buses = rng.permutation(n_buses)[:n_generators]
    if 0 not in gen_buses:
        gen_buses[0] = 0  # always generate at the slack bus
    capacity_total = capacity_margin * total_load
    shares = rng.uniform(0.5, 1.5, size=n_generators)
    shares = shares / np.sum(shares)
    costs = rng.uniform(15.0, 60.0, size=n_generators)
    generators = tuple(
        Generator(
            index=g,
            bus=int(gen_buses[g]),
            p_max_mw=float(capacity_total * shares[g]),
            cost_per_mwh=float(costs[g]),
            name=f"Gen {g + 1}",
        )
        for g in range(n_generators)
    )

    return PowerNetwork.from_components(
        buses=buses,
        branches=tuple(branches),
        generators=generators,
        name=f"synthetic{n_buses}",
    )


def _random_connected_edges(
    n_buses: int, extra_edge_factor: float, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Random spanning tree plus extra edges, without duplicates."""
    order = rng.permutation(n_buses)
    edges: list[tuple[int, int]] = []
    seen: set[frozenset[int]] = set()
    for position in range(1, n_buses):
        new_bus = int(order[position])
        attach_to = int(order[rng.integers(0, position)])
        edges.append((attach_to, new_bus))
        seen.add(frozenset((attach_to, new_bus)))

    n_extra = int(round(extra_edge_factor * n_buses))
    attempts = 0
    while n_extra > 0 and attempts < 20 * n_buses:
        attempts += 1
        a, b = rng.integers(0, n_buses, size=2)
        if a == b:
            continue
        key = frozenset((int(a), int(b)))
        if key in seen:
            continue
        seen.add(key)
        edges.append((int(a), int(b)))
        n_extra -= 1
    return edges


__all__ = ["synthetic_case"]
