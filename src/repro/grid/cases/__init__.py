"""Benchmark power-system cases.

Three cases from the paper are provided, plus a synthetic generator used by
property-based tests and scalability studies:

* :func:`~repro.grid.cases.case4.case4gs` — the 4-bus Grainger & Stevenson
  system of the paper's motivating example (Section IV-B, Tables I-III).
* :func:`~repro.grid.cases.case14.case14` — the IEEE 14-bus system with the
  paper's generator, D-FACTS and flow-limit settings (Section VII-A).
* :func:`~repro.grid.cases.case30.case30` — the IEEE 30-bus system
  (Fig. 6(b)).
* :func:`~repro.grid.cases.synthetic.synthetic_case` — random connected
  networks of arbitrary size.

Cases are accessed either by importing the functions directly or through the
string registry (:func:`load_case` / :func:`available_cases`).
"""

from repro.grid.cases.case4 import case4gs
from repro.grid.cases.case14 import case14
from repro.grid.cases.case30 import case30
from repro.grid.cases.synthetic import synthetic_case
from repro.grid.cases.registry import available_cases, load_case, register_case

__all__ = [
    "case4gs",
    "case14",
    "case30",
    "synthetic_case",
    "load_case",
    "available_cases",
    "register_case",
]
