"""String-keyed registry of benchmark cases.

The registry lets benchmark drivers and examples select a case by name
(``load_case("ieee14")``) and lets downstream users register their own case
constructors without modifying the library.

Cases registered with ``validate_ratings=True`` (the synthetic scale cases)
are passed through :func:`repro.grid.validation.validate_line_ratings` when
loaded, so a misconfigured network fails at construction time with an
actionable message instead of surfacing as an opaque "infeasible" status
deep inside the OPF solver.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import CaseNotFoundError
from repro.grid.cases.case4 import case4gs
from repro.grid.cases.case14 import case14
from repro.grid.cases.case30 import case30
from repro.grid.cases.synthetic import synthetic_case
from repro.grid.network import PowerNetwork

CaseFactory = Callable[..., PowerNetwork]

_REGISTRY: dict[str, CaseFactory] = {}
_VALIDATE_RATINGS: set[str] = set()


def register_case(
    name: str,
    factory: CaseFactory,
    overwrite: bool = False,
    validate_ratings: bool = False,
) -> None:
    """Register a case constructor under ``name``.

    Parameters
    ----------
    name:
        Registry key (case insensitive).
    factory:
        Callable returning a :class:`PowerNetwork`.
    overwrite:
        Allow replacing an existing registration.
    validate_ratings:
        Run :func:`repro.grid.validation.validate_line_ratings` on every
        network the factory produces, rejecting configurations whose line
        ratings cannot possibly serve the load.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("case name must be a non-empty string")
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"case {name!r} is already registered")
    _REGISTRY[key] = factory
    if validate_ratings:
        _VALIDATE_RATINGS.add(key)
    else:
        _VALIDATE_RATINGS.discard(key)


def load_case(name: str, **kwargs) -> PowerNetwork:
    """Instantiate the case registered under ``name``.

    Additional keyword arguments are forwarded to the case constructor
    (e.g. ``load_case("ieee14", dfacts_range=0.3)``).

    Names ending in ``.m`` are *file-referenced* MATPOWER cases rather than
    registry entries: they resolve to an existing path or to one of the
    bundled case files (``load_case("case30.m")``), and load through
    :func:`repro.grid.matpower.load_matpower_case` — so scenario specs can
    name any MATPOWER case directly (``GridSpec(case="case30.m")``).

    Raises
    ------
    CaseNotFoundError
        If ``name`` is not registered (or a referenced ``.m`` file does not
        exist).
    ConfigurationError
        If the case was registered with ``validate_ratings=True`` and the
        constructed network fails the line-rating validation.
    """
    raw = name.strip()
    if raw.lower().endswith(".m"):
        # Imported lazily: the MATPOWER parser is only needed for
        # file-referenced cases.
        from repro.grid.matpower import load_matpower_case, resolve_case_file

        return load_matpower_case(resolve_case_file(raw), **kwargs)
    key = raw.lower()
    if key not in _REGISTRY:
        raise CaseNotFoundError(
            f"unknown case {name!r}; available cases: {', '.join(available_cases())}"
        )
    network = _REGISTRY[key](**kwargs)
    if key in _VALIDATE_RATINGS:
        # Imported lazily: validation pulls in the matrix layer, which must
        # not be a hard import cost for plain case construction.
        from repro.grid.validation import validate_line_ratings

        validate_line_ratings(network, case_name=key)
    return network


def available_cases() -> tuple[str, ...]:
    """Return the sorted names of all registered cases."""
    return tuple(sorted(_REGISTRY))


def _synthetic_factory(n_buses: int, default_seed: int, **extra_defaults) -> CaseFactory:
    """Factory for a reproducible synthetic case of fixed size.

    The default seed is pinned so that ``load_case("synthetic57")`` names a
    single, stable network (callers may still override ``seed=`` or any
    other :func:`synthetic_case` parameter).  The generation fleet is spread
    more densely and the loads drawn lower than the generator's defaults:
    the synthetic line-rating heuristic tightens with network size, and
    these settings keep the nominal DC-OPF feasible at 57+ buses while
    preserving congestion.  ``extra_defaults`` layers size-specific
    overrides on top (e.g. the 300-bus case widens the line ratings via
    ``rate_scale``).
    """

    def factory(**kwargs) -> PowerNetwork:
        kwargs.setdefault("seed", default_seed)
        kwargs.setdefault("n_generators", max(2, n_buses // 4))
        kwargs.setdefault("load_range_mw", (5.0, 25.0))
        kwargs.setdefault("extra_edge_factor", 0.8)
        for key, value in extra_defaults.items():
            kwargs.setdefault(key, value)
        return synthetic_case(n_buses, **kwargs)

    return factory


# Built-in registrations.  Aliases cover the names used in the paper's text
# ("IEEE 14-bus system") and the MATPOWER file names.
register_case("case4gs", case4gs)
register_case("case4", case4gs)
register_case("ieee14", case14)
register_case("case14", case14)
register_case("ieee30", case30)
register_case("case30", case30)

# Larger synthetic configurations for scalability studies (the IEEE 57- and
# 118-bus systems' *sizes* plus a 300-bus stress case, generated by the
# synthetic-network generator with pinned seeds so the cases are
# reproducible across sessions).  Deliberately not aliased as
# "case57"/"case118"/"case300": those names would suggest the actual
# IEEE/MATPOWER data, which these random topologies are not.  The 300-bus
# case widens the size-tightened line-rating heuristic (rate_scale=2.0) so
# its dispatch stays feasible while congestion still binds.
register_case("synthetic57", _synthetic_factory(57, default_seed=57), validate_ratings=True)
register_case("synthetic118", _synthetic_factory(118, default_seed=118), validate_ratings=True)
register_case(
    "synthetic300",
    _synthetic_factory(300, default_seed=300, rate_scale=2.0),
    validate_ratings=True,
)
# Production-scale case for the sparse factorization backend: a 1354-bus
# network (the size of the PEGASE case the ROADMAP names) that scale
# benchmarks and backend-agreement tests can load without bundled MATPOWER
# data.  The widened rate_scale keeps the size-tightened rating heuristic
# dispatchable (validated on registration like the other synthetics); every
# parameter remains overridable (``load_case("synthetic1354", seed=7)``).
register_case(
    "synthetic1354",
    _synthetic_factory(1354, default_seed=1354, rate_scale=3.0),
    validate_ratings=True,
)

__all__ = ["register_case", "load_case", "available_cases", "CaseFactory"]
