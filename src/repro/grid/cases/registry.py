"""String-keyed registry of benchmark cases.

The registry lets benchmark drivers and examples select a case by name
(``load_case("ieee14")``) and lets downstream users register their own case
constructors without modifying the library.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import CaseNotFoundError
from repro.grid.cases.case4 import case4gs
from repro.grid.cases.case14 import case14
from repro.grid.cases.case30 import case30
from repro.grid.network import PowerNetwork

CaseFactory = Callable[..., PowerNetwork]

_REGISTRY: dict[str, CaseFactory] = {}


def register_case(name: str, factory: CaseFactory, overwrite: bool = False) -> None:
    """Register a case constructor under ``name``.

    Parameters
    ----------
    name:
        Registry key (case insensitive).
    factory:
        Callable returning a :class:`PowerNetwork`.
    overwrite:
        Allow replacing an existing registration.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("case name must be a non-empty string")
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"case {name!r} is already registered")
    _REGISTRY[key] = factory


def load_case(name: str, **kwargs) -> PowerNetwork:
    """Instantiate the case registered under ``name``.

    Additional keyword arguments are forwarded to the case constructor
    (e.g. ``load_case("ieee14", dfacts_range=0.3)``).
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise CaseNotFoundError(
            f"unknown case {name!r}; available cases: {', '.join(available_cases())}"
        )
    return _REGISTRY[key](**kwargs)


def available_cases() -> tuple[str, ...]:
    """Return the sorted names of all registered cases."""
    return tuple(sorted(_REGISTRY))


# Built-in registrations.  Aliases cover the names used in the paper's text
# ("IEEE 14-bus system") and the MATPOWER file names.
register_case("case4gs", case4gs)
register_case("case4", case4gs)
register_case("ieee14", case14)
register_case("case14", case14)
register_case("ieee30", case30)
register_case("case30", case30)

__all__ = ["register_case", "load_case", "available_cases", "CaseFactory"]
