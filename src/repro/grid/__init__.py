"""Power-grid data model and benchmark cases.

This subpackage replaces the MATPOWER case structures used by the paper with
a small, explicit Python data model:

* :class:`~repro.grid.components.Bus`, :class:`~repro.grid.components.Branch`
  and :class:`~repro.grid.components.Generator` — plain dataclasses holding
  the case data.
* :class:`~repro.grid.network.PowerNetwork` — an immutable container with
  convenience constructors (``with_reactances``, ``with_loads``, ...) used
  heavily by the MTD machinery, which constantly derives perturbed copies of
  a base network.
* :class:`~repro.grid.arrays.NetworkArrays` — the structure-of-arrays
  compute view behind ``PowerNetwork.arrays``: one NumPy array per field
  plus a topology cache shared across reactance-only derivatives, making
  MTD perturbation near-free on the hot path.
* :mod:`repro.grid.matrices` — branch-bus incidence, susceptance and
  measurement-matrix builders for the DC model (accepting either network
  representation).
* :mod:`repro.grid.cases` — the IEEE 4-bus, 14-bus and 30-bus benchmark
  systems used in the paper plus a synthetic-network generator.
* :mod:`repro.grid.matpower` — MATPOWER ``.m`` case import (bundled
  ``case14.m`` / ``case30.m`` plus arbitrary files via
  ``load_case("path/to/case.m")``).
"""

from repro.grid.arrays import NetworkArrays
from repro.grid.components import Branch, Bus, Generator
from repro.grid.network import PowerNetwork
from repro.grid.matrices import (
    branch_susceptance_matrix,
    incidence_matrix,
    measurement_matrix,
    reduced_measurement_matrix,
    susceptance_matrix,
)
from repro.grid.cases import load_case, available_cases
from repro.grid.matpower import (
    bundled_matpower_cases,
    load_matpower_case,
    network_from_matpower,
    parse_matpower,
)

__all__ = [
    "Bus",
    "Branch",
    "Generator",
    "PowerNetwork",
    "NetworkArrays",
    "incidence_matrix",
    "branch_susceptance_matrix",
    "susceptance_matrix",
    "measurement_matrix",
    "reduced_measurement_matrix",
    "load_case",
    "available_cases",
    "parse_matpower",
    "network_from_matpower",
    "load_matpower_case",
    "bundled_matpower_cases",
]
