"""Matrix builders for the DC power-flow model.

Notation follows Section III of the paper:

* ``A`` — the ``N x L`` branch-bus incidence matrix (``+1`` at the from bus,
  ``-1`` at the to bus of each branch).
* ``D`` — the ``L x L`` diagonal matrix of reciprocal branch reactances.
* ``B = A D Aᵀ`` — the ``N x N`` nodal susceptance matrix.
* ``H = [D Aᵀ; -D Aᵀ; A D Aᵀ]`` — the ``(2L + N) x N`` measurement matrix
  relating the state (bus voltage phase angles) to the SCADA measurements
  (forward branch flows, reverse branch flows, nodal injections).

Because the slack-bus angle is fixed to zero, state estimation and the MTD
subspace analysis operate on the *reduced* matrices with the slack column
removed, which are full column rank for a connected network.

Backends
--------
The dense builders return ``numpy.ndarray`` and exploit the diagonal
structure of ``D`` directly (no ``L x L`` materialisation).  For large
networks each builder has a ``scipy.sparse`` sibling (``*_sparse``)
returning CSR matrices; consumers that solve against the susceptance
matrix (:mod:`repro.powerflow.ptdf`, :mod:`repro.powerflow.dc`) switch to
the sparse backend automatically once the bus count reaches
:data:`SPARSE_BUS_THRESHOLD`, which keeps the 118- and 300-bus synthetic
cases tractable without changing the numerics of the small IEEE cases.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.grid.network import PowerNetwork

#: Bus count at which the solver layers (PTDF, DC power flow) switch from
#: dense factorisations to the ``scipy.sparse`` backend.  The IEEE 14/30
#: and 57-bus-sized cases stay dense (their numerics are pinned by the
#: paper-reproduction tests); the 118- and 300-bus synthetic cases go
#: sparse.
SPARSE_BUS_THRESHOLD: int = 100


def use_sparse_backend(network: PowerNetwork, sparse: bool | None = None) -> bool:
    """Decide whether ``network`` should use the sparse backend.

    Parameters
    ----------
    network:
        The network in question.
    sparse:
        Explicit override; ``None`` selects automatically by comparing the
        bus count against :data:`SPARSE_BUS_THRESHOLD`.
    """
    if sparse is not None:
        return bool(sparse)
    return network.n_buses >= SPARSE_BUS_THRESHOLD


def _branch_endpoints(network: PowerNetwork) -> tuple[np.ndarray, np.ndarray]:
    """From/to bus index vectors of every branch, shape ``(L,)`` each."""
    from_bus = np.fromiter((b.from_bus for b in network.branches), dtype=int, count=network.n_branches)
    to_bus = np.fromiter((b.to_bus for b in network.branches), dtype=int, count=network.n_branches)
    return from_bus, to_bus


def _reciprocal_reactances(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """The diagonal of ``D`` as a vector ``b = 1/x``, shape ``(L,)``."""
    x = network.reactances() if reactances is None else np.asarray(reactances, dtype=float)
    if x.shape[0] != network.n_branches:
        raise ValueError(
            f"expected {network.n_branches} reactances, got {x.shape[0]}"
        )
    if np.any(x <= 0):
        raise ValueError("all reactances must be strictly positive")
    return 1.0 / x


def incidence_matrix(network: PowerNetwork) -> np.ndarray:
    """Return the ``N x L`` branch-bus incidence matrix ``A``."""
    A = np.zeros((network.n_buses, network.n_branches))
    from_bus, to_bus = _branch_endpoints(network)
    cols = np.arange(network.n_branches)
    A[from_bus, cols] = 1.0
    A[to_bus, cols] = -1.0
    return A


def incidence_matrix_sparse(network: PowerNetwork) -> sp.csr_matrix:
    """Return ``A`` as a ``scipy.sparse`` CSR matrix, shape ``(N, L)``."""
    from_bus, to_bus = _branch_endpoints(network)
    cols = np.arange(network.n_branches)
    rows = np.concatenate([from_bus, to_bus])
    data = np.concatenate(
        [np.ones(network.n_branches), -np.ones(network.n_branches)]
    )
    return sp.csr_matrix(
        (data, (rows, np.concatenate([cols, cols]))),
        shape=(network.n_buses, network.n_branches),
    )


def branch_susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the diagonal matrix ``D`` of reciprocal branch reactances.

    Parameters
    ----------
    network:
        The network providing branch ordering and default reactances.
    reactances:
        Optional override vector (one entry per branch).  Used by the MTD
        layer to evaluate candidate perturbations without materialising a new
        :class:`PowerNetwork`.
    """
    return np.diag(_reciprocal_reactances(network, reactances))


def branch_susceptance_matrix_sparse(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> sp.dia_matrix:
    """Return ``D`` as a sparse diagonal matrix, shape ``(L, L)``."""
    return sp.diags(_reciprocal_reactances(network, reactances))


def susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the nodal susceptance matrix ``B = A D Aᵀ`` (``N x N``)."""
    A = incidence_matrix(network)
    b = _reciprocal_reactances(network, reactances)
    return (A * b) @ A.T


def susceptance_matrix_sparse(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return ``B = A D Aᵀ`` as a CSR matrix, shape ``(N, N)``."""
    A = incidence_matrix_sparse(network)
    D = branch_susceptance_matrix_sparse(network, reactances)
    return (A @ D @ A.T).tocsr()


def reduced_susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``B`` with the slack row and column removed (invertible)."""
    B = susceptance_matrix(network, reactances)
    keep = non_slack_indices(network)
    return B[np.ix_(keep, keep)]


def reduced_susceptance_matrix_sparse(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> sp.csc_matrix:
    """Return the reduced ``B`` as CSC (the layout sparse LU expects).

    Shape ``(N − 1, N − 1)``; row/column order follows
    :func:`non_slack_indices`.
    """
    B = susceptance_matrix_sparse(network, reactances).tocsc()
    keep = non_slack_indices(network)
    return B[np.ix_(keep, keep)].tocsc()


def non_slack_indices(network: PowerNetwork) -> np.ndarray:
    """Indices of all buses except the slack bus, in ascending order."""
    slack = network.slack_bus
    return np.array([i for i in range(network.n_buses) if i != slack], dtype=int)


def measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the full ``(2L + N) x N`` measurement matrix ``H``.

    Row ordering matches the paper's ``z = [p̃, f̃, -f̃]`` convention permuted
    to ``[f̃, -f̃, p̃]``; the exact ordering is irrelevant to the analysis
    (it is a fixed permutation) but is kept consistent across the library:
    rows ``0..L-1`` are forward flows, ``L..2L-1`` reverse flows and
    ``2L..2L+N-1`` nodal injections.
    """
    A = incidence_matrix(network)
    b = _reciprocal_reactances(network, reactances)
    flows = b[:, None] * A.T
    # Same expression as susceptance_matrix(), so the injection block of H
    # matches B bit-for-bit.
    injections = (A * b) @ A.T
    return np.vstack([flows, -flows, injections])


def measurement_matrix_sparse(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return ``H`` as a CSR matrix, shape ``(2L + N, N)``.

    Same row ordering as :func:`measurement_matrix`; useful when only a few
    rows are consumed or when ``H`` feeds a sparse solver.
    """
    A = incidence_matrix_sparse(network)
    D = branch_susceptance_matrix_sparse(network, reactances)
    flows = (D @ A.T).tocsr()
    injections = (A @ flows).tocsr()
    return sp.vstack([flows, -flows, injections], format="csr")


def reduced_measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``H`` with the slack-bus column removed.

    The reduced matrix has shape ``(2L + N) x (N - 1)`` and full column rank
    for any connected network, which is required both by the WLS state
    estimator and by the subspace analysis of the MTD (Proposition 1 /
    Theorem 1 reason about ``Col(H)`` of this full-column-rank matrix).
    """
    H = measurement_matrix(network, reactances)
    keep = non_slack_indices(network)
    return H[:, keep]


def reduced_measurement_matrix_sparse(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return the reduced ``H`` as CSR, shape ``(2L + N, N − 1)``."""
    H = measurement_matrix_sparse(network, reactances).tocsc()
    keep = non_slack_indices(network)
    return H[:, keep].tocsr()


def generator_incidence_matrix(network: PowerNetwork) -> np.ndarray:
    """Return the ``N x G`` generator-to-bus mapping matrix.

    Entry ``(i, g)`` is one when generator ``g`` is connected to bus ``i``,
    so that the nodal injection vector is ``C g − l``.
    """
    C = np.zeros((network.n_buses, network.n_generators))
    for gen in network.generators:
        C[gen.bus, gen.index] = 1.0
    return C


def branch_flow_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the ``L x N`` matrix mapping bus angles to branch flows ``D Aᵀ``."""
    A = incidence_matrix(network)
    b = _reciprocal_reactances(network, reactances)
    return b[:, None] * A.T


__all__ = [
    "SPARSE_BUS_THRESHOLD",
    "use_sparse_backend",
    "incidence_matrix",
    "incidence_matrix_sparse",
    "branch_susceptance_matrix",
    "branch_susceptance_matrix_sparse",
    "susceptance_matrix",
    "susceptance_matrix_sparse",
    "reduced_susceptance_matrix",
    "reduced_susceptance_matrix_sparse",
    "non_slack_indices",
    "measurement_matrix",
    "measurement_matrix_sparse",
    "reduced_measurement_matrix",
    "reduced_measurement_matrix_sparse",
    "generator_incidence_matrix",
    "branch_flow_matrix",
]
