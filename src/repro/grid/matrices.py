"""Matrix builders for the DC power-flow model.

Notation follows Section III of the paper:

* ``A`` — the ``N x L`` branch-bus incidence matrix (``+1`` at the from bus,
  ``-1`` at the to bus of each branch).
* ``D`` — the ``L x L`` diagonal matrix of reciprocal branch reactances.
* ``B = A D Aᵀ`` — the ``N x N`` nodal susceptance matrix.
* ``H = [D Aᵀ; -D Aᵀ; A D Aᵀ]`` — the ``(2L + N) x N`` measurement matrix
  relating the state (bus voltage phase angles) to the SCADA measurements
  (forward branch flows, reverse branch flows, nodal injections).

Because the slack-bus angle is fixed to zero, state estimation and the MTD
subspace analysis operate on the *reduced* matrices with the slack column
removed, which are full column rank for a connected network.

Representations
---------------
Every builder accepts either a validated
:class:`~repro.grid.network.PowerNetwork` or its structure-of-arrays view
:class:`~repro.grid.arrays.NetworkArrays` — internally everything runs on
the arrays representation (``network.arrays``), whose
:class:`~repro.grid.arrays.TopologyCache` holds the incidence matrix, the
non-slack index vector and the generator-incidence matrix.  Those artifacts
depend only on the wiring, so across the thousands of reactance-perturbed
variants the MTD loop evaluates they are built exactly once and shared;
only the cheap reciprocal-reactance scaling runs per call.  The arithmetic
is unchanged from the historical per-call builders, so outputs are
bit-identical (asserted in ``tests/test_grid_arrays.py``).

Backends
--------
The dense builders return ``numpy.ndarray`` and exploit the diagonal
structure of ``D`` directly (no ``L x L`` materialisation).  For large
networks each builder has a ``scipy.sparse`` sibling (``*_sparse``)
returning CSR matrices; consumers that solve against the susceptance
matrix (:mod:`repro.powerflow.ptdf`, :mod:`repro.powerflow.dc`) switch to
the sparse backend automatically once the bus count reaches
:data:`SPARSE_BUS_THRESHOLD`, which keeps the 118- and 300-bus synthetic
cases tractable without changing the numerics of the small IEEE cases.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.grid.arrays import NetworkArrays
from repro.grid.network import PowerNetwork

#: Either network representation; builders use ``network.arrays`` internally.
NetworkLike = Union[PowerNetwork, NetworkArrays]

#: Bus count at which the solver layers (PTDF, DC power flow) switch from
#: dense factorisations to the ``scipy.sparse`` backend.  The IEEE 14/30
#: and 57-bus-sized cases stay dense (their numerics are pinned by the
#: paper-reproduction tests); the 118- and 300-bus synthetic cases go
#: sparse.
SPARSE_BUS_THRESHOLD: int = 100


def use_sparse_backend(network: NetworkLike, sparse: bool | None = None) -> bool:
    """Decide whether ``network`` should use the sparse backend.

    Parameters
    ----------
    network:
        The network in question.
    sparse:
        Explicit override; ``None`` selects automatically by comparing the
        bus count against :data:`SPARSE_BUS_THRESHOLD`.
    """
    if sparse is not None:
        return bool(sparse)
    return network.n_buses >= SPARSE_BUS_THRESHOLD


def _reciprocal_reactances(
    arrays: NetworkArrays, reactances: np.ndarray | None = None
) -> np.ndarray:
    """The diagonal of ``D`` as a vector ``b = 1/x``, shape ``(L,)``.

    Out-of-service branches (``arrays.branch_status``) contribute zero
    susceptance: they keep their row/column slots in every matrix — so the
    measurement dimension and branch indexing are contingency-invariant —
    but carry no flow.  ``branch_status is None`` (all in service) skips
    the masking entirely, keeping the common path bit-identical.
    """
    x = arrays.branch_reactance if reactances is None else np.asarray(reactances, dtype=float)
    if x.shape[0] != arrays.n_branches:
        raise ValueError(
            f"expected {arrays.n_branches} reactances, got {x.shape[0]}"
        )
    if np.any(x <= 0):
        raise ValueError("all reactances must be strictly positive")
    b = 1.0 / x
    status = arrays.branch_status
    if status is not None:
        b = np.where(status, b, 0.0)
    return b


def incidence_matrix(network: NetworkLike) -> np.ndarray:
    """Return the ``N x L`` branch-bus incidence matrix ``A``.

    A mutable copy of the topology-cached matrix; internal consumers read
    the cache directly.
    """
    return network.arrays.topology.incidence().copy()


def incidence_matrix_sparse(network: NetworkLike) -> sp.csr_matrix:
    """Return ``A`` as a ``scipy.sparse`` CSR matrix, shape ``(N, L)``."""
    return network.arrays.topology.incidence_sparse().copy()


def branch_susceptance_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the diagonal matrix ``D`` of reciprocal branch reactances.

    Parameters
    ----------
    network:
        The network providing branch ordering and default reactances.
    reactances:
        Optional override vector (one entry per branch).  Used by the MTD
        layer to evaluate candidate perturbations without materialising a new
        network object.
    """
    return np.diag(_reciprocal_reactances(network.arrays, reactances))


def branch_susceptance_matrix_sparse(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> sp.dia_matrix:
    """Return ``D`` as a sparse diagonal matrix, shape ``(L, L)``."""
    return sp.diags(_reciprocal_reactances(network.arrays, reactances))


def susceptance_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the nodal susceptance matrix ``B = A D Aᵀ`` (``N x N``)."""
    arrays = network.arrays
    A = arrays.topology.incidence()
    b = _reciprocal_reactances(arrays, reactances)
    return (A * b) @ A.T


def susceptance_matrix_sparse(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return ``B = A D Aᵀ`` as a CSR matrix, shape ``(N, N)``."""
    arrays = network.arrays
    A = arrays.topology.incidence_sparse()
    D = sp.diags(_reciprocal_reactances(arrays, reactances))
    return (A @ D @ A.T).tocsr()


def reduced_susceptance_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``B`` with the slack row and column removed (invertible)."""
    B = susceptance_matrix(network, reactances)
    keep = network.arrays.topology.non_slack()
    return B[np.ix_(keep, keep)]


def reduced_susceptance_matrix_sparse(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> sp.csc_matrix:
    """Return the reduced ``B`` as CSC (the layout sparse LU expects).

    Shape ``(N − 1, N − 1)``; row/column order follows
    :func:`non_slack_indices`.
    """
    B = susceptance_matrix_sparse(network, reactances).tocsc()
    keep = network.arrays.topology.non_slack()
    return B[np.ix_(keep, keep)].tocsc()


def non_slack_indices(network: NetworkLike) -> np.ndarray:
    """Indices of all buses except the slack bus, in ascending order."""
    return network.arrays.topology.non_slack().copy()


def measurement_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the full ``(2L + N) x N`` measurement matrix ``H``.

    Row ordering matches the paper's ``z = [p̃, f̃, -f̃]`` convention permuted
    to ``[f̃, -f̃, p̃]``; the exact ordering is irrelevant to the analysis
    (it is a fixed permutation) but is kept consistent across the library:
    rows ``0..L-1`` are forward flows, ``L..2L-1`` reverse flows and
    ``2L..2L+N-1`` nodal injections.
    """
    arrays = network.arrays
    A = arrays.topology.incidence()
    b = _reciprocal_reactances(arrays, reactances)
    flows = b[:, None] * A.T
    # Same expression as susceptance_matrix(), so the injection block of H
    # matches B bit-for-bit.
    injections = (A * b) @ A.T
    return np.vstack([flows, -flows, injections])


def measurement_matrix_sparse(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return ``H`` as a CSR matrix, shape ``(2L + N, N)``.

    Same row ordering as :func:`measurement_matrix`; useful when only a few
    rows are consumed or when ``H`` feeds a sparse solver.
    """
    arrays = network.arrays
    A = arrays.topology.incidence_sparse()
    D = sp.diags(_reciprocal_reactances(arrays, reactances))
    flows = (D @ A.T).tocsr()
    injections = (A @ flows).tocsr()
    return sp.vstack([flows, -flows, injections], format="csr")


def reduced_measurement_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``H`` with the slack-bus column removed.

    The reduced matrix has shape ``(2L + N) x (N - 1)`` and full column rank
    for any connected network, which is required both by the WLS state
    estimator and by the subspace analysis of the MTD (Proposition 1 /
    Theorem 1 reason about ``Col(H)`` of this full-column-rank matrix).
    """
    H = measurement_matrix(network, reactances)
    keep = network.arrays.topology.non_slack()
    return H[:, keep]


def reduced_measurement_matrix_sparse(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> sp.csr_matrix:
    """Return the reduced ``H`` as CSR, shape ``(2L + N, N − 1)``."""
    H = measurement_matrix_sparse(network, reactances).tocsc()
    keep = network.arrays.topology.non_slack()
    return H[:, keep].tocsr()


def generator_incidence_matrix(network: NetworkLike) -> np.ndarray:
    """Return the ``N x G`` generator-to-bus mapping matrix.

    Entry ``(i, g)`` is one when generator ``g`` is connected to bus ``i``,
    so that the nodal injection vector is ``C g − l``.  A mutable copy of
    the topology-cached matrix.
    """
    return network.arrays.topology.generator_incidence().copy()


def branch_flow_matrix(
    network: NetworkLike, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the ``L x N`` matrix mapping bus angles to branch flows ``D Aᵀ``."""
    arrays = network.arrays
    A = arrays.topology.incidence()
    b = _reciprocal_reactances(arrays, reactances)
    return b[:, None] * A.T


__all__ = [
    "SPARSE_BUS_THRESHOLD",
    "NetworkLike",
    "use_sparse_backend",
    "incidence_matrix",
    "incidence_matrix_sparse",
    "branch_susceptance_matrix",
    "branch_susceptance_matrix_sparse",
    "susceptance_matrix",
    "susceptance_matrix_sparse",
    "reduced_susceptance_matrix",
    "reduced_susceptance_matrix_sparse",
    "non_slack_indices",
    "measurement_matrix",
    "measurement_matrix_sparse",
    "reduced_measurement_matrix",
    "reduced_measurement_matrix_sparse",
    "generator_incidence_matrix",
    "branch_flow_matrix",
]
