"""Matrix builders for the DC power-flow model.

Notation follows Section III of the paper:

* ``A`` — the ``N x L`` branch-bus incidence matrix (``+1`` at the from bus,
  ``-1`` at the to bus of each branch).
* ``D`` — the ``L x L`` diagonal matrix of reciprocal branch reactances.
* ``B = A D Aᵀ`` — the ``N x N`` nodal susceptance matrix.
* ``H = [D Aᵀ; -D Aᵀ; A D Aᵀ]`` — the ``(2L + N) x N`` measurement matrix
  relating the state (bus voltage phase angles) to the SCADA measurements
  (forward branch flows, reverse branch flows, nodal injections).

Because the slack-bus angle is fixed to zero, state estimation and the MTD
subspace analysis operate on the *reduced* matrices with the slack column
removed, which are full column rank for a connected network.
"""

from __future__ import annotations

import numpy as np

from repro.grid.network import PowerNetwork


def incidence_matrix(network: PowerNetwork) -> np.ndarray:
    """Return the ``N x L`` branch-bus incidence matrix ``A``."""
    A = np.zeros((network.n_buses, network.n_branches))
    for branch in network.branches:
        A[branch.from_bus, branch.index] = 1.0
        A[branch.to_bus, branch.index] = -1.0
    return A


def branch_susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the diagonal matrix ``D`` of reciprocal branch reactances.

    Parameters
    ----------
    network:
        The network providing branch ordering and default reactances.
    reactances:
        Optional override vector (one entry per branch).  Used by the MTD
        layer to evaluate candidate perturbations without materialising a new
        :class:`PowerNetwork`.
    """
    x = network.reactances() if reactances is None else np.asarray(reactances, dtype=float)
    if x.shape[0] != network.n_branches:
        raise ValueError(
            f"expected {network.n_branches} reactances, got {x.shape[0]}"
        )
    if np.any(x <= 0):
        raise ValueError("all reactances must be strictly positive")
    return np.diag(1.0 / x)


def susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the nodal susceptance matrix ``B = A D Aᵀ`` (``N x N``)."""
    A = incidence_matrix(network)
    D = branch_susceptance_matrix(network, reactances)
    return A @ D @ A.T


def reduced_susceptance_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``B`` with the slack row and column removed (invertible)."""
    B = susceptance_matrix(network, reactances)
    keep = non_slack_indices(network)
    return B[np.ix_(keep, keep)]


def non_slack_indices(network: PowerNetwork) -> np.ndarray:
    """Indices of all buses except the slack bus, in ascending order."""
    slack = network.slack_bus
    return np.array([i for i in range(network.n_buses) if i != slack], dtype=int)


def measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the full ``(2L + N) x N`` measurement matrix ``H``.

    Row ordering matches the paper's ``z = [p̃, f̃, -f̃]`` convention permuted
    to ``[f̃, -f̃, p̃]``; the exact ordering is irrelevant to the analysis
    (it is a fixed permutation) but is kept consistent across the library:
    rows ``0..L-1`` are forward flows, ``L..2L-1`` reverse flows and
    ``2L..2L+N-1`` nodal injections.
    """
    A = incidence_matrix(network)
    D = branch_susceptance_matrix(network, reactances)
    flows = D @ A.T
    injections = A @ D @ A.T
    return np.vstack([flows, -flows, injections])


def reduced_measurement_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return ``H`` with the slack-bus column removed.

    The reduced matrix has shape ``(2L + N) x (N - 1)`` and full column rank
    for any connected network, which is required both by the WLS state
    estimator and by the subspace analysis of the MTD (Proposition 1 /
    Theorem 1 reason about ``Col(H)`` of this full-column-rank matrix).
    """
    H = measurement_matrix(network, reactances)
    keep = non_slack_indices(network)
    return H[:, keep]


def generator_incidence_matrix(network: PowerNetwork) -> np.ndarray:
    """Return the ``N x G`` generator-to-bus mapping matrix.

    Entry ``(i, g)`` is one when generator ``g`` is connected to bus ``i``,
    so that the nodal injection vector is ``C g − l``.
    """
    C = np.zeros((network.n_buses, network.n_generators))
    for gen in network.generators:
        C[gen.bus, gen.index] = 1.0
    return C


def branch_flow_matrix(
    network: PowerNetwork, reactances: np.ndarray | None = None
) -> np.ndarray:
    """Return the ``L x N`` matrix mapping bus angles to branch flows ``D Aᵀ``."""
    A = incidence_matrix(network)
    D = branch_susceptance_matrix(network, reactances)
    return D @ A.T


__all__ = [
    "incidence_matrix",
    "branch_susceptance_matrix",
    "susceptance_matrix",
    "reduced_susceptance_matrix",
    "non_slack_indices",
    "measurement_matrix",
    "reduced_measurement_matrix",
    "generator_incidence_matrix",
    "branch_flow_matrix",
]
