"""``python -m repro`` — the campaign command line.

See :mod:`repro.campaign.cli` for the available subcommands.
"""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
