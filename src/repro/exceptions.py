"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch every failure mode of the package with a single ``except`` clause
while still being able to distinguish individual categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class GridModelError(ReproError):
    """Raised when a power-network description is structurally invalid.

    Examples include duplicate bus identifiers, branches referencing unknown
    buses, non-positive reactances, or generators attached to missing buses.
    """


class CaseNotFoundError(GridModelError):
    """Raised when a named benchmark case is not present in the registry."""


class IslandingError(GridModelError):
    """Raised when a contingency would split the network into islands.

    The DC state-estimation model (and the MTD analysis built on it)
    requires a connected grid; a branch outage that disconnects one or more
    buses is therefore rejected at derivation time rather than surfacing
    later as a singular susceptance matrix.  The offending branch indices
    are recorded on :attr:`branches`.
    """

    def __init__(self, message: str, *, branches: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.branches = tuple(int(b) for b in branches)


class PowerFlowError(ReproError):
    """Raised when a power-flow computation cannot be completed.

    Typical causes are a singular susceptance matrix (disconnected network)
    or an inconsistent slack-bus specification.
    """


class OPFInfeasibleError(ReproError):
    """Raised when an optimal power flow problem has no feasible point."""

    def __init__(self, message: str, *, status: str | None = None) -> None:
        super().__init__(message)
        self.status = status


class OPFConvergenceError(ReproError):
    """Raised when the non-linear OPF solver fails to converge.

    The best iterate found so far (if any) is attached for diagnostics so
    that callers may decide to accept a slightly infeasible solution.
    """

    def __init__(self, message: str, *, best_result: object | None = None) -> None:
        super().__init__(message)
        self.best_result = best_result


class EstimationError(ReproError):
    """Raised when state estimation cannot be performed.

    The usual cause is an unobservable measurement configuration, i.e. a
    measurement matrix that is rank deficient.
    """


class AttackConstructionError(ReproError):
    """Raised when a requested FDI attack vector cannot be constructed."""


class MTDDesignError(ReproError):
    """Raised when an MTD perturbation satisfying the requested criteria
    cannot be found within the D-FACTS device limits."""


class ConfigurationError(ReproError):
    """Raised when user-supplied configuration values are invalid."""


class TelemetryError(ReproError):
    """Raised when persisted telemetry artifacts are missing or unreadable.

    Carries an actionable message (which store, what was expected, how to
    produce it) so the CLI can print one line instead of a traceback.
    """
