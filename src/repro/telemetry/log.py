"""Structured logging for the telemetry subsystem.

Everything logs through the ``repro.telemetry`` logger.  By default the
logger is silent (a :class:`logging.NullHandler`); the CLI's
``--log-level``/``--log-json`` flags call :func:`configure_logging`, which
attaches either a human-readable or a line-JSON handler to stderr.

:func:`log_event` is the library-facing API: a named event plus flat
key/value fields, e.g. ``log_event("campaign.shard.done", shard=3,
wall_seconds=1.2)``.  In JSON mode each event is one parseable line::

    {"ts": 1722945600.1, "level": "info", "event": "campaign.shard.done",
     "shard": 3, "wall_seconds": 1.2}
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

#: Name of the telemetry logger (child loggers inherit its handlers).
LOGGER_NAME = "repro.telemetry"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def get_logger() -> logging.Logger:
    """The shared ``repro.telemetry`` logger (silent until configured)."""
    logger = logging.getLogger(LOGGER_NAME)
    if not logger.handlers:
        logger.addHandler(logging.NullHandler())
    return logger


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, event, flat fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                payload.setdefault(key, value)
        return json.dumps(payload, sort_keys=False, default=str)


class TextFormatter(logging.Formatter):
    """Compact human-readable form: ``HH:MM:SS level event k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = f"{stamp} {record.levelname.lower():<7} {record.getMessage()}"
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict) and fields:
            line += " " + " ".join(f"{k}={v}" for k, v in fields.items())
        return line


def parse_level(level: str | int) -> int:
    """Map a CLI level name (or numeric level) to a :mod:`logging` level."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; use one of {', '.join(_LEVELS)}"
        ) from None


def configure_logging(
    level: str | int = "info",
    json_output: bool = False,
    stream: TextIO | None = None,
) -> logging.Handler:
    """Attach a (single) stderr handler to the telemetry logger.

    Re-configuring replaces the previous handler, so repeated CLI
    invocations in one process never double-log.  Returns the handler
    (tests capture its stream).
    """
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter() if json_output else TextFormatter())
    logger.addHandler(handler)
    logger.setLevel(parse_level(level))
    logger.propagate = False
    return handler


def log_event(event: str, level: int = logging.INFO, **fields: Any) -> None:
    """Emit one structured event through the telemetry logger."""
    logger = logging.getLogger(LOGGER_NAME)
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


__all__ = [
    "LOGGER_NAME",
    "JsonLineFormatter",
    "TextFormatter",
    "get_logger",
    "configure_logging",
    "parse_level",
    "log_event",
]
