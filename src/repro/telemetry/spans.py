"""Lightweight timing spans with a no-op fast path.

``with span("campaign.shard", shard=3):`` times a region of code (wall and
CPU clock) and threads it into a tree: spans opened while another span is
active become its children.  Completed *root* spans are retained
per-process (bounded) and can be drained into a run report.

Two properties keep this safe to leave in hot paths:

* **disabled fast path** — while telemetry is off, :func:`span` returns a
  shared inert object; the call costs one attribute read and one function
  call, benchmarked at well under 2 % of the engine's trial kernel (see
  ``benchmarks/bench_telemetry_overhead.py``);
* **observation only** — spans never touch the instrumented computation;
  the scientific outputs are bit-identical with spans on or off.

On exit every span also records its wall duration into the
``span.seconds{span=...}`` histogram of the default metrics registry, so
aggregate per-region timing survives the process-pool boundary (span
*trees* are process-local; the merged histograms are not).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.telemetry import metrics as _metrics
from repro.telemetry.config import _STATE

#: Retention bound on completed root spans per process; beyond it spans are
#: dropped (counted) rather than grown without bound.
MAX_ROOT_SPANS = 512


class _Collector(threading.local):
    """Per-thread span stack plus the process-wide completed-root list."""

    def __init__(self) -> None:
        self.stack: list["Span"] = []


_COLLECTOR = _Collector()
_ROOTS: list[dict[str, Any]] = []
_ROOTS_LOCK = threading.Lock()
_DROPPED = 0


class NullSpan:
    """The shared inert span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def annotate(self, **attributes: Any) -> None:
        """No-op."""


NULL_SPAN = NullSpan()


class Span:
    """One timed region; use via :func:`span`, not directly."""

    __slots__ = (
        "name",
        "attributes",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "start_unix",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(self, name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.children: list[dict[str, Any]] = []
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.start_unix = 0.0
        self._wall_start = 0.0
        self._cpu_start = 0.0

    def annotate(self, **attributes: Any) -> None:
        """Attach extra attributes to an open span."""
        self.attributes.update(attributes)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form of the completed span (children included)."""
        record: dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            # Wall-clock epoch start: lets the OTLP exporter place spans
            # on a real timeline instead of synthesizing one.
            "start_unix": self.start_unix,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.children:
            record["children"] = list(self.children)
        return record

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        _COLLECTOR.stack.append(self)
        self.start_unix = time.time()
        self._cpu_start = time.process_time()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.wall_seconds = time.perf_counter() - self._wall_start
        self.cpu_seconds = time.process_time() - self._cpu_start
        stack = _COLLECTOR.stack
        if stack and stack[-1] is self:
            stack.pop()
        record = self.to_dict()
        if stack:
            stack[-1].children.append(record)
        else:
            global _DROPPED
            with _ROOTS_LOCK:
                if len(_ROOTS) < MAX_ROOT_SPANS:
                    _ROOTS.append(record)
                else:
                    _DROPPED += 1
        if _STATE.enabled:
            _metrics.histogram("span.seconds", self.wall_seconds, span=self.name)
        return False


def span(name: str, **attributes: Any) -> Span | NullSpan:
    """A context manager timing ``name``; inert while telemetry is off."""
    if not _STATE.enabled:
        return NULL_SPAN
    return Span(name, attributes)


def current_span() -> Span | None:
    """The innermost open span of this thread, or ``None``."""
    stack = _COLLECTOR.stack
    return stack[-1] if stack else None


def root_spans() -> list[dict[str, Any]]:
    """Completed root spans of this process (copies, oldest first)."""
    with _ROOTS_LOCK:
        return [dict(record) for record in _ROOTS]


def drain_spans() -> list[dict[str, Any]]:
    """Return and clear the completed root spans (report handoff)."""
    global _DROPPED
    with _ROOTS_LOCK:
        drained, _ROOTS[:] = list(_ROOTS), []
        _DROPPED = 0
    return drained


def dropped_spans() -> int:
    """Root spans dropped since the last :func:`drain_spans`."""
    return _DROPPED


__all__ = [
    "MAX_ROOT_SPANS",
    "NullSpan",
    "NULL_SPAN",
    "Span",
    "span",
    "current_span",
    "root_spans",
    "drain_spans",
    "dropped_spans",
]
