"""Live progress event stream (``progress.ndjson``).

While a campaign runs, the orchestrator and its shard workers append
compact heartbeat/progress records to ``progress.ndjson`` next to the
store manifest, so long-running sweeps stop being a black box: ``repro
campaign watch`` tails the stream and renders per-shard throughput,
completion and stall state while the run is still going.

The stream follows the same crash-safety discipline as the store's
segments:

* every record is one JSON line, appended with ``O_APPEND``, flushed and
  fsync'd before the writer continues — a record is either durably whole
  or absent;
* readers (:func:`read_progress`) ignore a torn final line and skip
  corrupt lines, so a ``kill -9`` mid-write never breaks the watchers;
* multiple writers (the orchestrator plus one process per shard) share
  the file via atomic appends; every writer stamps its ``pid`` and a
  per-writer monotonic ``seq``, so ``(pid, seq)`` identifies a record and
  gaps are detectable.

The stream is **observability-only** and off unless telemetry is on
(``--telemetry`` / ``REPRO_TELEMETRY``): stored campaign records are
bit-identical with the stream enabled or disabled.  Event volume is
bounded by rate limiting, not workload size: heartbeats are dropped
unless :func:`repro.telemetry.config.progress_interval` seconds have
passed since the last one with the same key, so a stream grows at
O(shards × runtime / heartbeat interval) — never O(trials).

Event kinds
-----------
``run_start``/``run_done``
    One per orchestrator invocation: plan hash, item totals, and the
    skip/ingest/execute partition (``run_done``).
``shard_start``/``shard_done``
    One pair per executed shard, carrying final ``done``/``total``
    scenario counts and wall/CPU seconds.
``heartbeat``
    Rate-limited liveness + throughput: cumulative scenarios ``done``,
    ``trials_done``, ``trials_per_sec``, ``cache_hits``, wall/CPU time,
    and optional phase detail (current scenario/trial, or the
    time-series ``hour``).
"""

from __future__ import annotations

import os
import json
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.telemetry import metrics as _metrics
from repro.telemetry.config import progress_interval

#: File name of the progress stream (lives next to ``campaign.json``).
PROGRESS_NAME = "progress.ndjson"

#: Schema version stamped into every event.
PROGRESS_SCHEMA_VERSION = 1

#: Event kinds that are never rate-limited.
FORCED_KINDS = frozenset({"run_start", "run_done", "shard_start", "shard_done"})


def progress_path(directory: str | Path) -> Path:
    """Where a store directory's progress stream lives."""
    return Path(directory) / PROGRESS_NAME


class ProgressWriter:
    """Appends fsync'd progress events to one ``progress.ndjson``.

    Parameters
    ----------
    path:
        The stream file (or a store directory containing it).
    min_interval:
        Minimum seconds between two non-forced events with the same
        rate-limit key; defaults to
        :func:`repro.telemetry.config.progress_interval` (settable via
        ``REPRO_PROGRESS_INTERVAL``; ``0`` emits everything).
    context:
        Default fields folded into every event (e.g. ``shard=3``).
    """

    def __init__(
        self,
        path: str | Path,
        min_interval: float | None = None,
        **context: Any,
    ) -> None:
        target = Path(path)
        if target.is_dir():
            target = progress_path(target)
        self._path = target
        self._min_interval = (
            progress_interval() if min_interval is None else max(0.0, float(min_interval))
        )
        self._context = dict(context)
        self._handle = None
        self._seq = 0
        self._pid = os.getpid()
        self._last_emit: dict[Any, float] = {}

    @property
    def path(self) -> Path:
        """The stream file this writer appends to."""
        return self._path

    @property
    def min_interval(self) -> float:
        """Seconds between non-forced events with the same key."""
        return self._min_interval

    def bind(self, **context: Any) -> None:
        """Fold extra default fields into every subsequent event."""
        self._context.update(context)

    # ------------------------------------------------------------------
    def ready(self, kind: str, key: Any = None) -> bool:
        """Whether a non-forced ``kind`` event would be emitted right now.

        Callers with expensive payloads (metrics snapshots) check this
        first so a rate-limited heartbeat costs one clock read.
        """
        if kind in FORCED_KINDS or self._min_interval <= 0.0:
            return True
        last = self._last_emit.get((kind, key))
        return last is None or (time.monotonic() - last) >= self._min_interval

    def emit(
        self, kind: str, force: bool | None = None, key: Any = None, **fields: Any
    ) -> dict[str, Any] | None:
        """Append one event; returns the record, or ``None`` if rate-limited.

        ``force`` overrides rate limiting (events in :data:`FORCED_KINDS`
        are always forced); ``key`` scopes the rate limit (e.g. per
        shard).  The record is durable when this returns.
        """
        forced = kind in FORCED_KINDS if force is None else bool(force)
        if not forced and not self.ready(kind, key):
            return None
        self._last_emit[(kind, key)] = time.monotonic()
        self._seq += 1
        record: dict[str, Any] = {
            "v": PROGRESS_SCHEMA_VERSION,
            "kind": kind,
            "seq": self._seq,
            "pid": self._pid,
            "ts": time.time(),
        }
        record.update(self._context)
        record.update(fields)
        line = (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
            "utf-8"
        )
        handle = self._handle
        if handle is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            handle = self._handle = self._path.open("ab")
        # One write() call per record: O_APPEND makes concurrent writers
        # interleave at line granularity, never mid-line.
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())
        return record

    def close(self) -> None:
        """Flush and close the stream handle (the file itself persists)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ProgressWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ShardProgress:
    """Per-shard progress accounting bound to one :class:`ProgressWriter`.

    Emits ``shard_start`` on construction and ``shard_done`` from
    :meth:`finish`; in between, :meth:`scenario_done` and :meth:`tick`
    emit rate-limited heartbeats carrying cumulative counts, sliding
    throughput, cache hits and wall/CPU time.  Install as the process's
    current sink with :func:`set_current` so deep instrumentation
    (engine trial loops, the time-series hour loop) can tick without
    threading a writer through every call signature.
    """

    def __init__(self, writer: ProgressWriter, shard: int, total: int) -> None:
        self._writer = writer
        self._shard = int(shard)
        self._total = int(total)
        self._done = 0
        self._trials_done = 0
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self._cache_hits_start = self._cache_hits_now()
        writer.emit("shard_start", shard=self._shard, done=0, total=self._total)

    @staticmethod
    def _cache_hits_now() -> int:
        counters = _metrics.registry().snapshot().counters
        return sum(
            value
            for key, value in counters.items()
            if key.startswith("cache.") and key.endswith(".hits")
        )

    def _payload(self) -> dict[str, Any]:
        wall = time.perf_counter() - self._wall_start
        return {
            "shard": self._shard,
            "done": self._done,
            "total": self._total,
            "trials_done": self._trials_done,
            "trials_per_sec": (self._trials_done / wall) if wall > 0 else 0.0,
            "cache_hits": self._cache_hits_now() - self._cache_hits_start,
            "wall_seconds": wall,
            "cpu_seconds": time.process_time() - self._cpu_start,
        }

    # ------------------------------------------------------------------
    def tick(self, **fields: Any) -> None:
        """Rate-limited liveness heartbeat from inside a scenario."""
        if not self._writer.ready("heartbeat", self._shard):
            return
        self._writer.emit(
            "heartbeat", force=True, key=self._shard, **self._payload(), **fields
        )

    def scenario_done(self, n_trials: int = 0) -> None:
        """Record one completed scenario (rate-limited heartbeat)."""
        self._done += 1
        self._trials_done += int(n_trials)
        self.tick()

    def finish(self) -> None:
        """Emit the forced ``shard_done`` event with final counts."""
        self._writer.emit("shard_done", **self._payload())


#: The process's current shard sink; ``None`` while no shard is running
#: (the common case — :func:`tick` then costs one read and one compare).
_CURRENT: ShardProgress | None = None


def set_current(progress: ShardProgress | None) -> None:
    """Install (or clear) the process-wide shard progress sink."""
    global _CURRENT
    _CURRENT = progress


def current() -> ShardProgress | None:
    """The installed shard sink, or ``None``."""
    return _CURRENT


def tick(**fields: Any) -> None:
    """Heartbeat through the installed sink; no-op when none is installed.

    This is the hook the engine's trial loops and the time-series hour
    loop call: one global read when idle, a rate-limited fsync'd append
    when a campaign is being watched.
    """
    progress = _CURRENT
    if progress is not None:
        progress.tick(**fields)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def parse_progress_lines(lines: Iterable[bytes]) -> list[dict[str, Any]]:
    """Parse raw stream lines, skipping corrupt ones and a torn tail."""
    events: list[dict[str, Any]] = []
    for line in lines:
        if not line.endswith(b"\n"):
            break  # torn tail: the writer died mid-append
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(record, dict) and "kind" in record and "ts" in record:
            events.append(record)
    return events


def read_progress(directory_or_path: str | Path, offset: int = 0) -> list[dict[str, Any]]:
    """Events of a store's progress stream (tolerant of crashes).

    ``offset`` skips bytes already consumed (tail-follow reads); a
    missing file yields an empty list.  Events are returned in file
    order, which interleaves concurrent writers in append order.
    """
    path = Path(directory_or_path)
    if path.is_dir():
        path = progress_path(path)
    try:
        with path.open("rb") as handle:
            if offset:
                handle.seek(offset)
            return parse_progress_lines(handle)
    except OSError:
        return []


def stream_size(directory_or_path: str | Path) -> int:
    """Current byte size of the stream (0 when absent) — follow cursor."""
    path = Path(directory_or_path)
    if path.is_dir():
        path = progress_path(path)
    try:
        return path.stat().st_size
    except OSError:
        return 0


__all__ = [
    "PROGRESS_NAME",
    "PROGRESS_SCHEMA_VERSION",
    "FORCED_KINDS",
    "progress_path",
    "ProgressWriter",
    "ShardProgress",
    "set_current",
    "current",
    "tick",
    "parse_progress_lines",
    "read_progress",
    "stream_size",
]
