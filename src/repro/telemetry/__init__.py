"""Telemetry: spans, mergeable metrics, structured logs, run reports.

A dependency-free instrumentation subsystem for the whole execution stack
(trial kernel → scenario engine → campaign orchestrator → time-series
operation engine).  Three pillars:

* **metrics** (:mod:`repro.telemetry.metrics`) — process-local counters,
  gauges and fixed-boundary histograms whose snapshots merge *exactly*
  across ``ProcessPoolExecutor`` workers;
* **spans** (:mod:`repro.telemetry.spans`) — wall/CPU timing trees with a
  no-op fast path while telemetry is disabled;
* **run reports** (:mod:`repro.telemetry.report`) — the merged
  ``telemetry.json`` persisted next to a campaign store's manifest,
  with cache hit rates, trials/sec, per-shard wall times and an
  environment stamp (:mod:`repro.telemetry.env`).

Telemetry is off by default; enable it with the ``REPRO_TELEMETRY``
environment variable, the CLI's ``--telemetry`` flag, or
:func:`repro.telemetry.set_enabled`.  Collection never changes scientific
outputs: results with telemetry on are bit-identical to results with it
off (asserted in the tier-1 suite).

Quickstart
----------
>>> from repro import telemetry
>>> telemetry.enable()
>>> with telemetry.span("my.region", size=3):
...     telemetry.counter("my.events")
>>> telemetry.snapshot().counters["my.events"]
1
"""

from repro.telemetry.config import (
    ENV_PROGRESS_INTERVAL,
    ENV_SWITCH,
    disable,
    enable,
    enabled,
    enabled_scope,
    progress_interval,
    set_enabled,
)
from repro.telemetry.env import environment_info, format_environment
from repro.telemetry.export import (
    METRICS_PROM_NAME,
    metrics_prom_path,
    otlp_spans_payload,
    parse_openmetrics,
    render_openmetrics,
    validate_openmetrics,
    write_prometheus,
)
from repro.telemetry.log import configure_logging, get_logger, log_event
from repro.telemetry.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
    counter,
    gauge,
    histogram,
    merge_snapshot,
    registry,
    reset,
    snapshot,
    snapshot_and_reset,
)
from repro.telemetry.progress import (
    PROGRESS_NAME,
    ProgressWriter,
    ShardProgress,
    progress_path,
    read_progress,
)
from repro.telemetry.report import (
    TELEMETRY_NAME,
    build_report,
    cache_rates,
    format_report,
    load_report,
    read_report,
    telemetry_path,
    write_report,
)
from repro.telemetry.spans import (
    NULL_SPAN,
    Span,
    current_span,
    drain_spans,
    root_spans,
    span,
)

__all__ = [
    # switch
    "ENV_SWITCH",
    "enabled",
    "enable",
    "disable",
    "set_enabled",
    "enabled_scope",
    # metrics
    "DEFAULT_SECONDS_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "reset",
    "snapshot",
    "snapshot_and_reset",
    "merge_snapshot",
    # spans
    "NULL_SPAN",
    "Span",
    "span",
    "current_span",
    "root_spans",
    "drain_spans",
    # logging
    "configure_logging",
    "get_logger",
    "log_event",
    # environment + reports
    "environment_info",
    "format_environment",
    "TELEMETRY_NAME",
    "build_report",
    "cache_rates",
    "format_report",
    "read_report",
    "load_report",
    "telemetry_path",
    "write_report",
    # progress stream
    "ENV_PROGRESS_INTERVAL",
    "progress_interval",
    "PROGRESS_NAME",
    "ProgressWriter",
    "ShardProgress",
    "progress_path",
    "read_progress",
    # exporters
    "METRICS_PROM_NAME",
    "metrics_prom_path",
    "render_openmetrics",
    "parse_openmetrics",
    "validate_openmetrics",
    "write_prometheus",
    "otlp_spans_payload",
]
