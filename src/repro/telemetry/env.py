"""Environment diagnostics stamped into run reports.

Stored campaign results are only attributable if the environment that
produced them is on record: interpreter and library versions, the machine
shape, and the performance-relevant configuration (the sparse-backend
threshold).  :func:`environment_info` collects all of it as a flat,
JSON-safe dict; the orchestrator stamps it into every ``telemetry.json``
and store manifest, and ``repro telemetry env`` prints it.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any


def environment_info() -> dict[str, Any]:
    """A flat, JSON-safe description of the executing environment."""
    info: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
    }
    try:
        from repro import __version__

        info["repro"] = __version__
    except Exception:  # pragma: no cover - partial installs
        info["repro"] = None
    for module_name in ("numpy", "scipy"):
        try:
            module = __import__(module_name)
            info[module_name] = getattr(module, "__version__", None)
        except ImportError:  # pragma: no cover - baked into the image
            info[module_name] = None
    try:
        from repro.grid.matrices import SPARSE_BUS_THRESHOLD

        info["sparse_bus_threshold"] = int(SPARSE_BUS_THRESHOLD)
    except Exception:  # pragma: no cover - partial installs
        info["sparse_bus_threshold"] = None
    try:
        from repro.estimation.backends import available_backends

        info["factorization_backends"] = ",".join(available_backends())
    except Exception:  # pragma: no cover - partial installs
        info["factorization_backends"] = None
    return info


def format_environment(info: dict[str, Any] | None = None) -> str:
    """Human-readable rendering of :func:`environment_info`."""
    info = environment_info() if info is None else info
    width = max(len(key) for key in info) if info else 0
    return "\n".join(f"{key:<{width}}  {info[key]}" for key in sorted(info))


__all__ = ["environment_info", "format_environment"]
