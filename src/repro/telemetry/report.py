"""Structured run reports (``telemetry.json``).

A run report is the merged, human-auditable outcome of one instrumented
invocation: the merged cross-process metrics snapshot, derived cache
hit/miss/eviction rates, throughput (trials/sec), per-shard wall times,
the skip/ingest/execute work partition, the environment stamp, and the
orchestrating process's span tree.  The orchestrator persists it as
``telemetry.json`` next to the campaign store manifest; ``repro telemetry
show`` and ``repro campaign status --telemetry`` render it.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Mapping

from repro.telemetry.env import environment_info
from repro.telemetry.metrics import MetricsSnapshot

#: File name of the persisted run report (lives next to ``campaign.json``).
TELEMETRY_NAME = "telemetry.json"

#: Schema version of the report payload.
REPORT_SCHEMA_VERSION = 1


def cache_rates(snapshot: MetricsSnapshot | Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    """Per-cache hit/miss/eviction accounting derived from the counters.

    Understands the library's ``cache.<name>.{hits,misses,evictions}``
    naming scheme and computes each cache's hit rate; caches with zero
    traffic are omitted.
    """
    counters = (
        snapshot.counters
        if isinstance(snapshot, MetricsSnapshot)
        else dict(snapshot.get("counters", {}))
    )
    caches: dict[str, dict[str, Any]] = {}
    for key, value in counters.items():
        if not key.startswith("cache."):
            continue
        name, _, event = key[len("cache."):].rpartition(".")
        if event not in ("hits", "misses", "evictions") or not name:
            continue
        caches.setdefault(name, {"hits": 0, "misses": 0, "evictions": 0})[event] = value
    for stats in caches.values():
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = (stats["hits"] / lookups) if lookups else None
    return {name: caches[name] for name in sorted(caches)}


def build_report(
    snapshot: MetricsSnapshot,
    elapsed_seconds: float,
    executed: int = 0,
    from_cache: int = 0,
    skipped: int = 0,
    trials_executed: int = 0,
    shard_wall_seconds: Mapping[int, float] | None = None,
    spans: list[dict[str, Any]] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run report from a merged snapshot plus run accounting."""
    elapsed = float(elapsed_seconds)
    report: dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "created_unix": time.time(),
        "environment": environment_info(),
        "elapsed_seconds": elapsed,
        "partition": {
            "executed": int(executed),
            "from_cache": int(from_cache),
            "skipped": int(skipped),
        },
        "throughput": {
            "trials_executed": int(trials_executed),
            "trials_per_second": (trials_executed / elapsed) if elapsed > 0 else None,
        },
        "caches": cache_rates(snapshot),
        "metrics": snapshot.to_dict(),
    }
    if shard_wall_seconds:
        report["shards"] = {
            "wall_seconds": {
                str(index): float(shard_wall_seconds[index])
                for index in sorted(shard_wall_seconds)
            }
        }
    if spans:
        report["spans"] = list(spans)
    if extra:
        report.update(dict(extra))
    return report


def telemetry_path(directory: str | Path) -> Path:
    """Where a store directory's run report lives."""
    return Path(directory) / TELEMETRY_NAME


def write_report(directory: str | Path, report: Mapping[str, Any]) -> Path:
    """Atomically persist ``report`` as ``telemetry.json`` in ``directory``."""
    path = telemetry_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".telemetry-", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_report(directory: str | Path) -> dict[str, Any] | None:
    """Load a store's persisted run report, or ``None`` if absent/corrupt."""
    try:
        payload = json.loads(telemetry_path(directory).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def load_report(directory: str | Path) -> dict[str, Any]:
    """Load a store's run report, or raise an actionable :class:`TelemetryError`.

    The CLI-facing sibling of :func:`read_report`: instead of collapsing
    every failure to ``None``, the error message says which store was
    inspected, what was expected there, and what went wrong — a missing
    file (telemetry was never on), unreadable bytes, truncated/invalid
    JSON, or a JSON document that is not a report object.
    """
    from repro.exceptions import TelemetryError

    path = telemetry_path(directory)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise TelemetryError(
            f"no telemetry report at {path} — expected the {TELEMETRY_NAME} "
            f"written by an instrumented run; re-run the campaign against "
            f"{Path(directory)} with --telemetry (or REPRO_TELEMETRY=1)"
        ) from None
    except OSError as error:
        raise TelemetryError(
            f"telemetry report at {path} is unreadable ({error}); re-run the "
            "campaign with --telemetry to rewrite it"
        ) from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        detail = "is empty" if not text.strip() else f"is not valid JSON ({error})"
        raise TelemetryError(
            f"telemetry report at {path} {detail} — likely truncated by a "
            "crash; re-run the campaign with --telemetry to rewrite it"
        ) from None
    if not isinstance(payload, dict):
        raise TelemetryError(
            f"telemetry report at {path} holds a JSON "
            f"{type(payload).__name__}, not a report object; re-run the "
            "campaign with --telemetry to rewrite it"
        )
    return payload


def _format_span(record: Mapping[str, Any], indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    attrs = record.get("attributes") or {}
    suffix = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())) if attrs else ""
    lines.append(
        f"{pad}{record.get('name', '?')}: "
        f"{float(record.get('wall_seconds', 0.0)):.4f}s wall, "
        f"{float(record.get('cpu_seconds', 0.0)):.4f}s cpu{suffix}"
    )
    for child in record.get("children", ()):
        _format_span(child, indent + 1, lines)


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a run report for the CLI."""
    lines: list[str] = []
    elapsed = float(report.get("elapsed_seconds", 0.0))
    partition = report.get("partition", {})
    throughput = report.get("throughput", {})
    lines.append(
        f"run: {elapsed:.2f}s — executed {partition.get('executed', 0)}, "
        f"from cache {partition.get('from_cache', 0)}, "
        f"skipped {partition.get('skipped', 0)}"
    )
    tps = throughput.get("trials_per_second")
    lines.append(
        f"throughput: {throughput.get('trials_executed', 0)} trials"
        + (f", {tps:.1f} trials/sec" if tps else "")
    )
    shards = report.get("shards", {}).get("wall_seconds", {})
    if shards:
        shard_part = ", ".join(
            f"#{index}: {float(seconds):.2f}s" for index, seconds in shards.items()
        )
        lines.append(f"shard wall times: {shard_part}")
    caches = report.get("caches", {})
    for name, stats in caches.items():
        rate = stats.get("hit_rate")
        rate_str = f"{100.0 * rate:.1f}%" if rate is not None else "n/a"
        lines.append(
            f"cache {name}: {stats.get('hits', 0)} hits / "
            f"{stats.get('misses', 0)} misses / "
            f"{stats.get('evictions', 0)} evictions (hit rate {rate_str})"
        )
    counters = report.get("metrics", {}).get("counters", {})
    interesting = {
        k: v for k, v in counters.items() if not k.startswith("cache.")
    }
    if interesting:
        lines.append("counters:")
        for key in sorted(interesting):
            lines.append(f"  {key} = {interesting[key]}")
    env = report.get("environment", {})
    if env:
        lines.append(
            "environment: "
            + ", ".join(
                f"{k}={env[k]}"
                for k in ("repro", "python", "numpy", "scipy", "cpu_count")
                if k in env
            )
        )
    spans = report.get("spans")
    if spans:
        lines.append("spans:")
        for record in spans:
            _format_span(record, 1, lines)
    return "\n".join(lines)


__all__ = [
    "TELEMETRY_NAME",
    "REPORT_SCHEMA_VERSION",
    "cache_rates",
    "build_report",
    "telemetry_path",
    "write_report",
    "read_report",
    "load_report",
    "format_report",
]
