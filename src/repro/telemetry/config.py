"""The telemetry on/off switch.

Telemetry is **off by default** and the whole subsystem is built around a
cheap disabled fast path: every instrumentation site guards on
:data:`_STATE.enabled` (one attribute read), :func:`~repro.telemetry.spans.span`
returns a shared no-op object, and the metric helpers return immediately.
The scientific outputs are bit-identical either way — telemetry only ever
*observes*.

The switch is controlled three ways, in increasing precedence:

* the ``REPRO_TELEMETRY`` environment variable (``1``/``true``/``on``/…)
  read at import time — the way batch jobs and pool workers inherit the
  setting;
* :func:`set_enabled` / :func:`enable` / :func:`disable` — the programmatic
  API the CLI's ``--telemetry`` flag uses;
* :func:`enabled_scope` — a context manager for tests and benchmarks.

Pool workers do not rely on inheriting this module's state: the engine and
orchestrator pass the flag explicitly through their worker entry points, so
telemetry works under any ``multiprocessing`` start method.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable that switches telemetry on for a whole process tree.
ENV_SWITCH = "REPRO_TELEMETRY"

#: Environment variable bounding the progress-stream heartbeat cadence
#: (seconds between non-forced events; ``0`` emits every event).  Read per
#: writer, so pool workers inherit it through the environment under any
#: multiprocessing start method.
ENV_PROGRESS_INTERVAL = "REPRO_PROGRESS_INTERVAL"

#: Default minimum seconds between two heartbeats with the same key.
DEFAULT_PROGRESS_INTERVAL = 1.0

_TRUTHY = {"1", "true", "yes", "on", "enabled"}


def _env_enabled() -> bool:
    return os.environ.get(ENV_SWITCH, "").strip().lower() in _TRUTHY


class _State:
    """Mutable process-local telemetry state (a slot read on hot paths)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = _env_enabled()


#: The process-local switch.  Hot paths read ``_STATE.enabled`` directly.
_STATE = _State()


def enabled() -> bool:
    """Whether telemetry collection is currently on in this process."""
    return _STATE.enabled


def set_enabled(on: bool) -> bool:
    """Set the switch; returns the previous value (for restore patterns)."""
    previous = _STATE.enabled
    _STATE.enabled = bool(on)
    return previous


def enable() -> None:
    """Turn telemetry collection on."""
    _STATE.enabled = True


def disable() -> None:
    """Turn telemetry collection off (the default)."""
    _STATE.enabled = False


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force the switch (used by tests and benchmarks)."""
    previous = set_enabled(on)
    try:
        yield
    finally:
        set_enabled(previous)


def progress_interval() -> float:
    """Minimum seconds between rate-limited progress heartbeats.

    Controlled by ``REPRO_PROGRESS_INTERVAL``; invalid or negative values
    fall back to :data:`DEFAULT_PROGRESS_INTERVAL`.  ``0`` disables rate
    limiting (every event is written — tests and tight benchmarks).
    """
    raw = os.environ.get(ENV_PROGRESS_INTERVAL, "").strip()
    if not raw:
        return DEFAULT_PROGRESS_INTERVAL
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_PROGRESS_INTERVAL
    return value if value >= 0.0 else DEFAULT_PROGRESS_INTERVAL


__all__ = [
    "ENV_SWITCH",
    "ENV_PROGRESS_INTERVAL",
    "DEFAULT_PROGRESS_INTERVAL",
    "enabled",
    "set_enabled",
    "enable",
    "disable",
    "enabled_scope",
    "progress_interval",
]
