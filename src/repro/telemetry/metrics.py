"""Process-local, mergeable metrics: counters, gauges, histograms.

Every process (the orchestrating one and each pool worker) accumulates into
its own :class:`MetricsRegistry`.  At the pool boundary a worker captures a
:class:`MetricsSnapshot` — a plain-data, JSON-safe record — and ships it
back with its results; the parent merges the snapshots into its own
registry.  Merging is **exact and deterministic**:

* counters add, and addition is associative/commutative, so the merged
  totals are independent of shard assignment and completion order;
* histograms use *fixed bucket boundaries* chosen at first observation
  (or declared up front), so merged bucket counts equal the counts a
  single serial process would have produced — no re-bucketing, no
  approximation;
* gauges merge by maximum, the only order-independent choice for a
  last-value metric (used for high-water marks such as cache occupancy).

Metric names are dotted strings (``"engine.trials"``,
``"cache.linear_model.hits"``); optional labels are folded into the key
deterministically (``"span.seconds{name=engine.trial}"``).  Serialized
snapshots sort their keys, so two byte-identical runs produce
byte-identical telemetry payloads.

All helpers are no-ops while telemetry is disabled (see
:mod:`repro.telemetry.config`), so instrumentation sites cost one function
call and one attribute read when off.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.telemetry.config import _STATE

#: Default histogram boundaries for second-valued observations: roughly
#: exponential from 100 µs to 1 minute.  Observations above the last
#: boundary land in the overflow bucket.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def metric_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """The registry key of ``name`` with ``labels`` folded in, sorted."""
    if not labels:
        return name
    folded = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{folded}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """The inverse of :func:`metric_key`: ``(name, labels)`` of a key.

    The exporters use this to turn folded registry keys back into label
    sets (``"span.seconds{span=engine.trial}"`` →
    ``("span.seconds", {"span": "engine.trial"})``).  Label values
    containing ``,`` or ``=`` are not representable in the folded form to
    begin with, so the split is exact for every key the registry makes.
    """
    name, brace, rest = key.partition("{")
    if not brace:
        return key, {}
    if not rest.endswith("}"):
        raise ValueError(f"malformed metric key: {key!r}")
    labels: dict[str, str] = {}
    body = rest[:-1]
    if body:
        for part in body.split(","):
            label, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"malformed metric key label: {key!r}")
            labels[label] = value
    return name, labels


class _Histogram:
    """Mutable fixed-boundary histogram accumulator."""

    __slots__ = ("boundaries", "bucket_counts", "total", "count", "minimum", "maximum")

    def __init__(self, boundaries: tuple[float, ...]) -> None:
        self.boundaries = boundaries
        self.bucket_counts = [0] * (len(boundaries) + 1)  # +1 overflow bucket
        self.total = 0.0
        self.count = 0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.total,
            "count": self.count,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


def _merge_histogram_payloads(a: Mapping[str, Any], b: Mapping[str, Any]) -> dict[str, Any]:
    """Exact merge of two serialized histograms (same boundaries required)."""
    if list(a["boundaries"]) != list(b["boundaries"]):
        raise ValueError(
            "cannot merge histograms with different bucket boundaries: "
            f"{a['boundaries']} vs {b['boundaries']}"
        )
    mins = [m for m in (a.get("min"), b.get("min")) if m is not None]
    maxs = [m for m in (a.get("max"), b.get("max")) if m is not None]
    return {
        "boundaries": list(a["boundaries"]),
        "bucket_counts": [x + y for x, y in zip(a["bucket_counts"], b["bucket_counts"])],
        "sum": float(a["sum"]) + float(b["sum"]),
        "count": int(a["count"]) + int(b["count"]),
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
    }


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, JSON-safe capture of a registry's accumulators.

    ``merge`` is associative and commutative (counters/histograms add,
    gauges take the maximum), so any merge tree over the same set of
    snapshots yields the same totals — the property the cross-process
    tests assert.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """The exact combination of two snapshots (neither is mutated)."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        histograms = {k: dict(v) for k, v in self.histograms.items()}
        for key, payload in other.histograms.items():
            if key in histograms:
                histograms[key] = _merge_histogram_payloads(histograms[key], payload)
            else:
                histograms[key] = dict(payload)
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    @staticmethod
    def merge_all(snapshots: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold ``merge`` over snapshots (associative: any order, same totals)."""
        merged = MetricsSnapshot()
        for snapshot in snapshots:
            merged = merged.merge(snapshot)
        return merged

    def subtract(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """The delta accumulated since ``earlier`` (a prefix of ``self``).

        Counters and histogram bucket counts are monotone, so the
        difference of two captures of the *same* registry is itself a valid
        snapshot — what :meth:`ScenarioEngine.run` attaches per scenario.
        Gauges and histogram min/max are not invertible; the later value is
        kept.
        """
        counters = {
            key: value - earlier.counters.get(key, 0)
            for key, value in self.counters.items()
            if value - earlier.counters.get(key, 0)
        }
        histograms: dict[str, dict[str, Any]] = {}
        for key, payload in self.histograms.items():
            before = earlier.histograms.get(key)
            if before is None:
                histograms[key] = dict(payload)
                continue
            counts = [x - y for x, y in zip(payload["bucket_counts"], before["bucket_counts"])]
            count = int(payload["count"]) - int(before["count"])
            if count <= 0:
                continue
            histograms[key] = {
                "boundaries": list(payload["boundaries"]),
                "bucket_counts": counts,
                "sum": float(payload["sum"]) - float(before["sum"]),
                "count": count,
                "min": payload.get("min"),
                "max": payload.get("max"),
            }
        return MetricsSnapshot(
            counters=counters, gauges=dict(self.gauges), histograms=histograms
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Sorted-key plain-data form (deterministic serialization)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: dict(self.histograms[k]) for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            histograms={str(k): dict(v) for k, v in data.get("histograms", {}).items()},
        )


class MetricsRegistry:
    """Accumulates counters/gauges/histograms for one process.

    Registries are cheap plain-dict accumulators; the module-level default
    registry (accessed through :func:`counter` / :func:`gauge` /
    :func:`histogram`) is what the library's instrumentation writes to.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._boundaries: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, value: int = 1, **labels: Any) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + int(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Record the latest value of ``name`` (merges as a maximum)."""
        self._gauges[metric_key(name, labels)] = float(value)

    def declare_histogram(self, name: str, boundaries: Iterable[float]) -> None:
        """Fix the bucket boundaries of ``name`` before first observation."""
        bounds = tuple(float(b) for b in boundaries)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram boundaries must be strictly increasing: {bounds}")
        existing = self._boundaries.get(name)
        if existing is not None and existing != bounds:
            raise ValueError(
                f"histogram {name!r} already declared with boundaries {existing}"
            )
        self._boundaries[name] = bounds

    def histogram(
        self,
        name: str,
        value: float,
        boundaries: Iterable[float] | None = None,
        **labels: Any,
    ) -> None:
        """Observe ``value`` in the fixed-boundary histogram ``name``.

        The boundaries are fixed the first time the metric is seen —
        from ``boundaries``, a prior :meth:`declare_histogram`, or
        :data:`DEFAULT_SECONDS_BUCKETS` — and every process observing the
        same metric name uses the same default, which is what makes the
        cross-process merge exact.
        """
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            bounds = self._boundaries.get(name)
            if bounds is None:
                bounds = (
                    tuple(float(b) for b in boundaries)
                    if boundaries is not None
                    else DEFAULT_SECONDS_BUCKETS
                )
                self._boundaries.setdefault(name, bounds)
            hist = self._histograms[key] = _Histogram(bounds)
        hist.observe(float(value))

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """An immutable capture of the current accumulators."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: h.to_dict() for k, h in self._histograms.items()},
        )

    def reset(self) -> None:
        """Drop every accumulator (declared boundaries are kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot_and_reset(self) -> MetricsSnapshot:
        """Capture then clear — the pool-boundary handoff primitive."""
        snapshot = self.snapshot()
        self.reset()
        return snapshot

    def merge_snapshot(self, snapshot: MetricsSnapshot | Mapping[str, Any]) -> None:
        """Fold a (possibly serialized) snapshot into this registry."""
        if not isinstance(snapshot, MetricsSnapshot):
            snapshot = MetricsSnapshot.from_dict(snapshot)
        for key, value in snapshot.counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.gauges.items():
            self._gauges[key] = max(self._gauges[key], value) if key in self._gauges else value
        for key, payload in snapshot.histograms.items():
            hist = self._histograms.get(key)
            if hist is None:
                bounds = tuple(float(b) for b in payload["boundaries"])
                hist = self._histograms[key] = _Histogram(bounds)
            merged = _merge_histogram_payloads(hist.to_dict(), payload)
            hist.bucket_counts = list(merged["bucket_counts"])
            hist.total = merged["sum"]
            hist.count = merged["count"]
            hist.minimum = merged["min"] if merged["min"] is not None else float("inf")
            hist.maximum = merged["max"] if merged["max"] is not None else float("-inf")


#: The process-local default registry all library instrumentation uses.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


def counter(name: str, value: int = 1, **labels: Any) -> None:
    """Increment a counter in the default registry (no-op when disabled)."""
    if _STATE.enabled:
        _REGISTRY.counter(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge in the default registry (no-op when disabled)."""
    if _STATE.enabled:
        _REGISTRY.gauge(name, value, **labels)


def histogram(
    name: str, value: float, boundaries: Iterable[float] | None = None, **labels: Any
) -> None:
    """Observe into a histogram in the default registry (no-op when disabled)."""
    if _STATE.enabled:
        _REGISTRY.histogram(name, value, boundaries=boundaries, **labels)


def snapshot() -> MetricsSnapshot:
    """Capture the default registry."""
    return _REGISTRY.snapshot()


def snapshot_and_reset() -> MetricsSnapshot:
    """Capture then clear the default registry (pool-boundary handoff)."""
    return _REGISTRY.snapshot_and_reset()


def reset() -> None:
    """Clear the default registry."""
    _REGISTRY.reset()


def merge_snapshot(payload: MetricsSnapshot | Mapping[str, Any]) -> None:
    """Merge a worker's snapshot into the default registry."""
    _REGISTRY.merge_snapshot(payload)


__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "metric_key",
    "split_metric_key",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "snapshot_and_reset",
    "reset",
    "merge_snapshot",
]
