"""Standard-format telemetry exporters (Prometheus/OpenMetrics, OTLP).

Dependency-free renderers that turn the library's own telemetry types
into the two wire formats the monitoring world speaks:

* :func:`render_openmetrics` — any
  :class:`~repro.telemetry.metrics.MetricsSnapshot` as OpenMetrics text
  (the Prometheus exposition format): counters, gauges, and histograms
  with their exact bucket boundaries.  :func:`parse_openmetrics` is its
  inverse, so every counter/gauge/histogram round-trips — the property
  the exporter tests pin.  ``campaign run --telemetry`` persists the
  run's snapshot as ``metrics.prom`` next to ``telemetry.json``
  (:func:`write_prometheus`), ``telemetry show --format prom`` renders a
  stored report, and ``campaign watch --serve-metrics`` exposes a live
  scrape endpoint.
* :func:`otlp_spans_payload` — the span forest of a run report in the
  OTLP/JSON shape (``resourceSpans → scopeSpans → spans`` with
  hex trace/span ids and unix-nano timestamps), consumable by any
  OpenTelemetry collector's JSON receiver.  Rendered by ``telemetry show
  --format otlp``.

Format contracts
----------------
Metric names are the registry's dotted names with unsafe characters
mapped to ``_`` and a ``repro_`` prefix; the original dotted name is
carried verbatim in the ``# HELP`` text, which is what makes the parse
side exact.  Counters follow the OpenMetrics ``_total`` sample-suffix
rule; histogram ``le`` labels are the registry's bucket boundaries with
cumulative counts plus the mandated ``+Inf`` bucket.  Histogram
``min``/``max`` have no OpenMetrics representation and do not round-trip
(``None`` after parsing).  Output always ends with ``# EOF``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.telemetry.metrics import MetricsSnapshot, metric_key, split_metric_key

#: File name of the persisted Prometheus rendering (next to telemetry.json).
METRICS_PROM_NAME = "metrics.prom"

#: Default prefix namespacing every exported metric family.
PROM_PREFIX = "repro"

#: Content type a scrape endpoint should serve OpenMetrics text under.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_UNSAFE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_FAMILY_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"')


def prom_name(name: str, prefix: str = PROM_PREFIX) -> str:
    """The exposition-safe family name of a dotted metric name."""
    safe = _UNSAFE_RE.sub("_", name)
    return f"{prefix}_{safe}" if prefix else safe


def _escape_label_value(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_number(value: Any) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _parse_number(text: str) -> float:
    lowered = text.strip()
    if lowered == "+Inf":
        return math.inf
    if lowered == "-Inf":
        return -math.inf
    if lowered == "NaN":
        return math.nan
    return float(lowered)


def _label_text(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(labels[key])}"' for key in sorted(labels)
    )
    return "{" + body + "}"


# ----------------------------------------------------------------------
# OpenMetrics rendering
# ----------------------------------------------------------------------
def render_openmetrics(
    snapshot: MetricsSnapshot | Mapping[str, Any], prefix: str = PROM_PREFIX
) -> str:
    """OpenMetrics text rendering of a metrics snapshot.

    Families are emitted in sorted original-name order, each with a
    ``# HELP`` line carrying the original dotted name (the round-trip
    anchor) and a ``# TYPE`` line; the output terminates with ``# EOF``.
    """
    if not isinstance(snapshot, MetricsSnapshot):
        snapshot = MetricsSnapshot.from_dict(snapshot)

    # family original name -> (type, {labels_key: (labels, payload)})
    families: dict[str, dict[str, Any]] = {}

    def family(name: str, kind: str) -> dict[str, Any]:
        entry = families.setdefault(name, {"type": kind, "series": []})
        if entry["type"] != kind:
            raise ValueError(
                f"metric {name!r} exported as both {entry['type']} and {kind}"
            )
        return entry

    for key, value in snapshot.counters.items():
        name, labels = split_metric_key(key)
        family(name, "counter")["series"].append((labels, value))
    for key, value in snapshot.gauges.items():
        name, labels = split_metric_key(key)
        family(name, "gauge")["series"].append((labels, value))
    for key, payload in snapshot.histograms.items():
        name, labels = split_metric_key(key)
        family(name, "histogram")["series"].append((labels, payload))

    seen_family_names: dict[str, str] = {}
    lines: list[str] = []
    for original in sorted(families):
        entry = families[original]
        fam = prom_name(original, prefix)
        clash = seen_family_names.get(fam)
        if clash is not None and clash != original:
            raise ValueError(
                f"metric names {clash!r} and {original!r} both export as {fam!r}"
            )
        seen_family_names[fam] = original
        lines.append(f"# HELP {fam} {original}")
        lines.append(f"# TYPE {fam} {entry['type']}")
        for labels, value in sorted(entry["series"], key=lambda s: sorted(s[0].items())):
            if entry["type"] == "counter":
                lines.append(f"{fam}_total{_label_text(labels)} {_format_number(value)}")
            elif entry["type"] == "gauge":
                lines.append(f"{fam}{_label_text(labels)} {_format_number(value)}")
            else:
                boundaries = [float(b) for b in value["boundaries"]]
                counts = [int(c) for c in value["bucket_counts"]]
                cumulative = 0
                for boundary, count in zip(boundaries, counts):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_number(boundary)
                    lines.append(
                        f"{fam}_bucket{_label_text(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{fam}_bucket{_label_text(bucket_labels)} {int(value['count'])}"
                )
                lines.append(
                    f"{fam}_sum{_label_text(labels)} {_format_number(float(value['sum']))}"
                )
                lines.append(f"{fam}_count{_label_text(labels)} {int(value['count'])}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    return {
        match.group("key"): _unescape_label_value(match.group("value"))
        for match in _LABEL_RE.finditer(text)
    }


def parse_openmetrics(text: str) -> MetricsSnapshot:
    """Rebuild a :class:`MetricsSnapshot` from :func:`render_openmetrics` text.

    Counters and gauges round-trip exactly; histograms recover their
    boundaries, per-bucket counts, sum and count (``min``/``max`` are not
    representable in the format and come back ``None``).
    """
    kinds: dict[str, str] = {}  # family exposition name -> type
    originals: dict[str, str] = {}  # family exposition name -> dotted name
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    buckets: dict[str, dict[float, int]] = {}
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}

    def family_of(sample: str) -> tuple[str, str] | None:
        """(family, role) of a sample name, honoring declared types."""
        if sample in kinds:
            return sample, "value"
        for suffix, role in (("_total", "total"), ("_bucket", "bucket"),
                             ("_sum", "sum"), ("_count", "count")):
            if sample.endswith(suffix) and sample[: -len(suffix)] in kinds:
                return sample[: -len(suffix)], role
        return None

    for raw in text.splitlines():
        line = raw.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            fam, _, help_text = rest.partition(" ")
            originals[fam] = help_text.strip()
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            fam, _, kind = rest.partition(" ")
            kinds[fam] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable OpenMetrics sample: {line!r}")
        resolved = family_of(match.group("name"))
        if resolved is None:
            raise ValueError(f"sample {match.group('name')!r} has no # TYPE family")
        fam, role = resolved
        labels = _parse_labels(match.group("labels"))
        original = originals.get(fam, fam)
        kind = kinds[fam]
        if kind == "counter" and role == "total":
            counters[metric_key(original, labels)] = int(_parse_number(match.group("value")))
        elif kind == "gauge" and role == "value":
            gauges[metric_key(original, labels)] = _parse_number(match.group("value"))
        elif kind == "histogram":
            le = labels.pop("le", None)
            key = metric_key(original, labels)
            if role == "bucket":
                if le is None:
                    raise ValueError(f"histogram bucket without le label: {line!r}")
                buckets.setdefault(key, {})[_parse_number(le)] = int(
                    _parse_number(match.group("value"))
                )
            elif role == "sum":
                sums[key] = _parse_number(match.group("value"))
            elif role == "count":
                counts[key] = int(_parse_number(match.group("value")))

    histograms: dict[str, dict[str, Any]] = {}
    for key, series in buckets.items():
        boundaries = sorted(b for b in series if not math.isinf(b))
        cumulative = [series[b] for b in boundaries]
        total = counts.get(key, series.get(math.inf, 0))
        per_bucket = [
            c - (cumulative[i - 1] if i else 0) for i, c in enumerate(cumulative)
        ]
        overflow = total - (cumulative[-1] if cumulative else 0)
        histograms[key] = {
            "boundaries": boundaries,
            "bucket_counts": per_bucket + [overflow],
            "sum": sums.get(key, 0.0),
            "count": total,
            "min": None,
            "max": None,
        }
    return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)


def validate_openmetrics(text: str) -> list[str]:
    """Minimal OpenMetrics syntax check; returns a list of problems.

    Checks the structural contract a scraper relies on: every sample line
    parses, every sample belongs to a ``# TYPE``-declared family, counter
    samples carry the ``_total`` suffix and are finite and non-negative,
    histogram buckets are cumulative with a ``+Inf`` bucket equal to
    ``_count``, and the exposition ends with ``# EOF``.
    """
    errors: list[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[-1].strip() != "# EOF":
        errors.append("exposition does not end with # EOF")
    kinds: dict[str, str] = {}
    bucket_state: dict[str, tuple[float, int]] = {}  # series key -> (last le, last cum)
    inf_buckets: dict[str, int] = {}
    count_samples: dict[str, int] = {}

    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            fam, _, kind = rest.partition(" ")
            kind = kind.strip()
            if not _FAMILY_NAME_RE.match(fam):
                errors.append(f"line {number}: invalid family name {fam!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "unknown",
                            "info", "stateset", "gaugehistogram"):
                errors.append(f"line {number}: unknown metric type {kind!r}")
            kinds[fam] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        fam = None
        role = "value"
        if name in kinds:
            fam = name
        else:
            for suffix, suffix_role in (("_total", "total"), ("_bucket", "bucket"),
                                        ("_sum", "sum"), ("_count", "count"),
                                        ("_created", "created")):
                if name.endswith(suffix) and name[: -len(suffix)] in kinds:
                    fam, role = name[: -len(suffix)], suffix_role
                    break
        if fam is None:
            errors.append(f"line {number}: sample {name!r} has no # TYPE family")
            continue
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            errors.append(f"line {number}: unparseable value {match.group('value')!r}")
            continue
        kind = kinds[fam]
        if kind == "counter":
            if role != "total" and role != "created":
                errors.append(
                    f"line {number}: counter sample {name!r} must use _total"
                )
            if value < 0 or math.isnan(value):
                errors.append(f"line {number}: counter value {value} is invalid")
        if kind == "histogram" and role == "bucket":
            labels = _parse_labels(match.group("labels"))
            le = labels.pop("le", None)
            if le is None:
                errors.append(f"line {number}: histogram bucket without le label")
                continue
            series = fam + _label_text(labels)
            boundary = _parse_number(le)
            cumulative = int(value)
            previous = bucket_state.get(series)
            if previous is not None:
                last_le, last_cum = previous
                if boundary <= last_le:
                    errors.append(
                        f"line {number}: bucket le={le} not increasing for {series}"
                    )
                if cumulative < last_cum:
                    errors.append(
                        f"line {number}: bucket counts not cumulative for {series}"
                    )
            bucket_state[series] = (boundary, cumulative)
            if math.isinf(boundary):
                inf_buckets[series] = cumulative
        if kind == "histogram" and role == "count":
            labels = _parse_labels(match.group("labels"))
            count_samples[fam + _label_text(labels)] = int(value)

    for series, total in count_samples.items():
        if series not in inf_buckets:
            errors.append(f"histogram {series} has no le=\"+Inf\" bucket")
        elif inf_buckets[series] != total:
            errors.append(
                f"histogram {series}: +Inf bucket {inf_buckets[series]} != "
                f"count {total}"
            )
    return errors


def check_openmetrics(text: str) -> None:
    """Raise ``ValueError`` listing every problem found by the validator."""
    errors = validate_openmetrics(text)
    if errors:
        raise ValueError("invalid OpenMetrics exposition:\n" + "\n".join(errors))


def metrics_prom_path(directory: str | Path) -> Path:
    """Where a store directory's Prometheus rendering lives."""
    return Path(directory) / METRICS_PROM_NAME


def write_prometheus(
    directory: str | Path, snapshot: MetricsSnapshot | Mapping[str, Any]
) -> Path:
    """Atomically persist ``metrics.prom`` in a store directory."""
    path = metrics_prom_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = render_openmetrics(snapshot)
    fd, tmp = tempfile.mkstemp(prefix=".metrics-", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# ----------------------------------------------------------------------
# OTLP span export
# ----------------------------------------------------------------------
def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(attributes: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [
        {"key": str(key), "value": _otlp_value(attributes[key])}
        for key in attributes
    ]


def _hex_id(seed: str, n_chars: int) -> str:
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()[:n_chars]


def _flatten_span(
    record: Mapping[str, Any],
    path: str,
    trace_id: str,
    parent_id: str,
    default_start: float,
    out: list[dict[str, Any]],
) -> None:
    wall = float(record.get("wall_seconds", 0.0))
    start = record.get("start_unix")
    start = float(start) if start else default_start
    end = start + wall
    span_id = _hex_id(trace_id + path, 16)
    attributes = dict(record.get("attributes") or {})
    attributes["cpu_seconds"] = float(record.get("cpu_seconds", 0.0))
    out.append(
        {
            "traceId": trace_id,
            "spanId": span_id,
            "parentSpanId": parent_id,
            "name": str(record.get("name", "?")),
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(int(round(start * 1e9))),
            "endTimeUnixNano": str(int(round(end * 1e9))),
            "attributes": _otlp_attributes(attributes),
        }
    )
    # Children without their own epoch stamps are laid out sequentially
    # from the parent's start (old reports predating start_unix).
    cursor = start
    for index, child in enumerate(record.get("children", ())):
        _flatten_span(
            child, f"{path}/{index}", trace_id, span_id, cursor, out
        )
        cursor += float(child.get("wall_seconds", 0.0))


def otlp_spans_payload(
    spans: Iterable[Mapping[str, Any]],
    resource: Mapping[str, Any] | None = None,
    end_unix: float | None = None,
) -> dict[str, Any]:
    """The span forest as an OTLP/JSON ``ExportTraceServiceRequest`` body.

    Each root span becomes its own trace; ids are deterministic hashes of
    the tree position, so the same report always exports the same ids.
    Spans recorded with ``start_unix`` keep their real timeline; older
    records are laid out synthetically ending at ``end_unix``.
    """
    try:
        from repro import __version__ as _version
    except Exception:  # pragma: no cover - partial installs
        _version = None
    resource_attributes = {"service.name": "repro"}
    if _version:
        resource_attributes["service.version"] = _version
    for key, value in (resource or {}).items():
        resource_attributes.setdefault(str(key), value)

    flat: list[dict[str, Any]] = []
    for index, record in enumerate(spans):
        trace_id = _hex_id(f"trace/{index}/{record.get('name', '?')}", 32)
        wall = float(record.get("wall_seconds", 0.0))
        if record.get("start_unix"):
            default_start = float(record["start_unix"])
        elif end_unix is not None:
            default_start = float(end_unix) - wall
        else:
            default_start = 0.0
        _flatten_span(record, f"span/{index}", trace_id, "", default_start, flat)

    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _otlp_attributes(resource_attributes)},
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.telemetry"},
                        "spans": flat,
                    }
                ],
            }
        ]
    }


def otlp_from_report(report: Mapping[str, Any]) -> dict[str, Any]:
    """OTLP payload of a persisted run report (``telemetry.json``)."""
    return otlp_spans_payload(
        report.get("spans") or (),
        resource=report.get("environment") or {},
        end_unix=report.get("created_unix"),
    )


def render_otlp_json(report: Mapping[str, Any], indent: int | None = 1) -> str:
    """JSON text of :func:`otlp_from_report` (CLI convenience)."""
    return json.dumps(otlp_from_report(report), indent=indent, sort_keys=False)


__all__ = [
    "METRICS_PROM_NAME",
    "PROM_PREFIX",
    "OPENMETRICS_CONTENT_TYPE",
    "prom_name",
    "render_openmetrics",
    "parse_openmetrics",
    "validate_openmetrics",
    "check_openmetrics",
    "metrics_prom_path",
    "write_prometheus",
    "otlp_spans_payload",
    "otlp_from_report",
    "render_otlp_json",
]
