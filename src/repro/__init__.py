"""repro — reproduction of "Cost-Benefit Analysis of Moving-Target Defense
in Power Grids" (Lakshminarayana & Yau, IEEE/IFIP DSN 2018).

The package implements the full stack the paper builds on — a DC power-grid
model with benchmark IEEE cases, DC power flow and optimal power flow, state
estimation with bad-data detection, and stealthy false-data-injection
attacks — plus the paper's contribution: formally grounded selection of
moving-target-defense (MTD) reactance perturbations and the analysis of
their cost-benefit trade-off.

Quickstart
----------
>>> from repro import case14, solve_dc_opf, EffectivenessEvaluator, design_mtd_perturbation
>>> network = case14()
>>> baseline = solve_dc_opf(network)
>>> evaluator = EffectivenessEvaluator(network, baseline.angles_rad, n_attacks=200)
>>> design = design_mtd_perturbation(network, gamma_threshold=0.3, method="two-stage")
>>> evaluator.evaluate(design.perturbed_reactances).eta(0.9)  # doctest: +SKIP
0.97
"""

from repro.exceptions import (
    AttackConstructionError,
    CaseNotFoundError,
    ConfigurationError,
    EstimationError,
    GridModelError,
    IslandingError,
    MTDDesignError,
    OPFConvergenceError,
    OPFInfeasibleError,
    PowerFlowError,
    ReproError,
)
from repro.grid import (
    Branch,
    Bus,
    Generator,
    NetworkArrays,
    PowerNetwork,
    available_cases,
    load_case,
    load_matpower_case,
    measurement_matrix,
    network_from_matpower,
    reduced_measurement_matrix,
)
from repro.grid.cases import case4gs, case14, case30, synthetic_case
from repro.powerflow import (
    bridge_branches,
    lodf_matrix,
    post_outage_ptdf,
    ptdf_matrix,
    ptdf_with_branch_outage,
    screen_branch_outages,
    solve_dc_power_flow,
)
from repro.opf import OPFResult, solve_dc_opf, solve_reactance_opf
from repro.estimation import (
    BadDataDetector,
    LinearModel,
    LinearModelCache,
    MeasurementSystem,
    WLSStateEstimator,
)
from repro.attacks import (
    generate_attack_ensemble,
    is_undetectable_under,
    scale_attack_to_measurement_ratio,
    stealthy_attack,
    targeted_state_attack,
)
from repro.mtd import (
    DailyMTDScheduler,
    EffectivenessEvaluator,
    EffectivenessResult,
    MTDDesignResult,
    RandomMTDBaseline,
    ReactancePerturbation,
    TradeoffCurve,
    admits_no_undetectable_attacks,
    attack_remains_stealthy,
    compute_tradeoff_curve,
    design_mtd_perturbation,
    max_spa_perturbation,
    mtd_operational_cost,
    principal_angles,
    smallest_principal_angle,
    subspace_angle,
)
from repro.loads import (
    available_shapes,
    day_shape,
    multi_day_profile,
    nyiso_like_winter_day,
    profile_for_network,
)
from repro.analysis.montecarlo import MonteCarloSummary, repeat_experiment, summarize_values
from repro.engine import (
    AttackSpec,
    ContingencySpec,
    DetectorSpec,
    GridSpec,
    MTDSpec,
    ResultCache,
    ScenarioEngine,
    ScenarioResult,
    ScenarioSpec,
    TrialResult,
    available_scenarios,
    expand_grid,
    paper_scenarios,
    run_scenario,
    run_trial_batch,
    scenario_suite,
)
from repro.campaign import (
    CampaignDefinition,
    CampaignOrchestrator,
    CampaignStore,
    available_campaigns,
    campaign_from_suite,
    plan_campaign,
    run_campaign,
)
from repro.timeseries import (
    OperationEngine,
    OperationRecord,
    OperationResult,
    OperationSpec,
    ProfileSpec,
    TuningSpec,
    daily_operation_spec,
)
from repro import telemetry

__version__ = "1.9.0"

__all__ = [
    # exceptions
    "ReproError",
    "GridModelError",
    "CaseNotFoundError",
    "IslandingError",
    "PowerFlowError",
    "OPFInfeasibleError",
    "OPFConvergenceError",
    "EstimationError",
    "AttackConstructionError",
    "MTDDesignError",
    "ConfigurationError",
    # grid
    "Bus",
    "Branch",
    "Generator",
    "PowerNetwork",
    "NetworkArrays",
    "case4gs",
    "case14",
    "case30",
    "synthetic_case",
    "load_case",
    "available_cases",
    "load_matpower_case",
    "network_from_matpower",
    "measurement_matrix",
    "reduced_measurement_matrix",
    # power flow / OPF
    "solve_dc_power_flow",
    "ptdf_matrix",
    "lodf_matrix",
    "bridge_branches",
    "post_outage_ptdf",
    "ptdf_with_branch_outage",
    "screen_branch_outages",
    "OPFResult",
    "solve_dc_opf",
    "solve_reactance_opf",
    # estimation
    "MeasurementSystem",
    "WLSStateEstimator",
    "BadDataDetector",
    "LinearModel",
    "LinearModelCache",
    # attacks
    "stealthy_attack",
    "targeted_state_attack",
    "is_undetectable_under",
    "scale_attack_to_measurement_ratio",
    "generate_attack_ensemble",
    # MTD
    "ReactancePerturbation",
    "smallest_principal_angle",
    "subspace_angle",
    "principal_angles",
    "attack_remains_stealthy",
    "admits_no_undetectable_attacks",
    "EffectivenessEvaluator",
    "EffectivenessResult",
    "mtd_operational_cost",
    "design_mtd_perturbation",
    "max_spa_perturbation",
    "MTDDesignResult",
    "RandomMTDBaseline",
    "TradeoffCurve",
    "compute_tradeoff_curve",
    "DailyMTDScheduler",
    "nyiso_like_winter_day",
    "available_shapes",
    "day_shape",
    "multi_day_profile",
    "profile_for_network",
    # analysis
    "MonteCarloSummary",
    "repeat_experiment",
    "summarize_values",
    # scenario engine
    "ScenarioSpec",
    "GridSpec",
    "AttackSpec",
    "DetectorSpec",
    "MTDSpec",
    "ContingencySpec",
    "expand_grid",
    "ScenarioEngine",
    "run_scenario",
    "run_trial_batch",
    "ResultCache",
    "ScenarioResult",
    "TrialResult",
    "available_scenarios",
    "scenario_suite",
    "paper_scenarios",
    # campaign orchestration
    "CampaignDefinition",
    "CampaignOrchestrator",
    "CampaignStore",
    "available_campaigns",
    "campaign_from_suite",
    "plan_campaign",
    "run_campaign",
    # time-series operation
    "OperationSpec",
    "ProfileSpec",
    "TuningSpec",
    "OperationEngine",
    "OperationRecord",
    "OperationResult",
    "daily_operation_spec",
    # observability
    "telemetry",
    "__version__",
]
