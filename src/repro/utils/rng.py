"""Random-number-generator plumbing.

Every stochastic routine in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and converts it to a
generator via :func:`as_generator`.  This keeps all experiments reproducible
(the benchmark harness passes explicit seeds) while letting interactive users
write ``seed=0`` and forget about the details.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed: int | np.random.Generator | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an integer seed, a
        ``SeedSequence``, or an already constructed generator (returned
        unchanged).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | np.random.SeedSequence | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used by Monte-Carlo drivers that evaluate many attack vectors so that the
    per-attack noise streams do not overlap regardless of evaluation order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be split directly; derive a seed sequence from
        # the generator's bit stream to keep determinism.
        entropy = int(seed.integers(0, 2**63 - 1))
        seq = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(count)]


def random_unit_vector(dimension: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a vector uniformly distributed on the unit sphere in ``R^dimension``."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    vec = rng.standard_normal(dimension)
    norm = np.linalg.norm(vec)
    while norm < 1e-12:  # pragma: no cover - astronomically unlikely
        vec = rng.standard_normal(dimension)
        norm = np.linalg.norm(vec)
    return vec / norm


def random_signs(count: int, rng: np.random.Generator) -> np.ndarray:
    """Return an array of ``count`` independent ±1 values."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.choice(np.array([-1.0, 1.0]), size=count)


def permuted_indices(count: int, rng: np.random.Generator, take: int | None = None) -> np.ndarray:
    """Return a random permutation of ``range(count)`` (optionally truncated).

    Convenience used by the random-MTD baseline to pick the subset of
    D-FACTS-equipped lines to perturb.
    """
    perm = rng.permutation(count)
    if take is None:
        return perm
    if take < 0 or take > count:
        raise ValueError(f"take must be in [0, {count}], got {take}")
    return perm[:take]


__all__ = [
    "as_generator",
    "spawn_generators",
    "random_unit_vector",
    "random_signs",
    "permuted_indices",
    "SeedLike",
]
