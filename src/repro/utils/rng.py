"""Random-number-generator plumbing.

Every stochastic routine in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` and converts it to a
generator via :func:`as_generator`.  This keeps all experiments reproducible
(the benchmark harness passes explicit seeds) while letting interactive users
write ``seed=0`` and forget about the details.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed: int | np.random.Generator | np.random.SeedSequence | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an integer seed, a
        ``SeedSequence``, or an already constructed generator (returned
        unchanged).

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | np.random.SeedSequence | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Used by Monte-Carlo drivers that evaluate many attack vectors so that the
    per-attack noise streams do not overlap regardless of evaluation order.

    The caller's ``seed`` is never mutated: children are derived from the
    seed material (entropy + spawn key + current spawn count) rather than
    by drawing from the stream or advancing the spawn counter, so two
    consecutive calls with the same input yield the same children and a
    passed-in :class:`~numpy.random.Generator` keeps its state.  The spawn
    counter is still *read*, so children never collide with ones the
    caller already spawned itself.  Integer seeds and fresh
    ``SeedSequence`` inputs produce the same children as
    ``SeedSequence(seed).spawn(count)`` always did.

    The flip side of statelessness: the children occupy spawn keys
    ``offset .. offset+count-1`` without reserving them, so a caller that
    *afterwards* calls ``seq.spawn()`` on the same sequence (or calls this
    function again expecting fresh streams) receives those keys again.
    Repeatability is the contract here; callers needing further
    independent children from the same sequence should spawn their own
    before calling, or use distinct sequences.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own seed material instead of
        # consuming its bit stream (which would advance the caller's state
        # and make repeated calls disagree).  Exotic bit generators without
        # a recorded seed sequence fall back to a one-off entropy draw from
        # an independent copy of the state, still leaving the caller intact.
        seq = getattr(seed.bit_generator, "seed_seq", None) or getattr(
            seed.bit_generator, "_seed_seq", None
        )
        if seq is None:  # pragma: no cover - non-SeedSequence bit generator
            entropy = int(np.random.Generator(seed.bit_generator.jumped()).integers(0, 2**63 - 1))
            seq = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    # Equivalent to ``seq.spawn(count)``, but without advancing the spawn
    # counter: the counter is only read (as the key offset), so children
    # stay disjoint from any the caller spawned before this call.
    offset = int(getattr(seq, "n_children_spawned", 0))
    children = [
        np.random.SeedSequence(entropy=seq.entropy, spawn_key=seq.spawn_key + (offset + i,))
        for i in range(count)
    ]
    return [np.random.Generator(np.random.PCG64(child)) for child in children]


def random_unit_vector(dimension: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a vector uniformly distributed on the unit sphere in ``R^dimension``."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    vec = rng.standard_normal(dimension)
    norm = np.linalg.norm(vec)
    while norm < 1e-12:  # pragma: no cover - astronomically unlikely
        vec = rng.standard_normal(dimension)
        norm = np.linalg.norm(vec)
    return vec / norm


def random_signs(count: int, rng: np.random.Generator) -> np.ndarray:
    """Return an array of ``count`` independent ±1 values."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.choice(np.array([-1.0, 1.0]), size=count)


def permuted_indices(count: int, rng: np.random.Generator, take: int | None = None) -> np.ndarray:
    """Return a random permutation of ``range(count)`` (optionally truncated).

    Convenience used by the random-MTD baseline to pick the subset of
    D-FACTS-equipped lines to perturb.
    """
    perm = rng.permutation(count)
    if take is None:
        return perm
    if take < 0 or take > count:
        raise ValueError(f"take must be in [0, {count}], got {take}")
    return perm[:take]


__all__ = [
    "as_generator",
    "spawn_generators",
    "random_unit_vector",
    "random_signs",
    "permuted_indices",
    "SeedLike",
]
