"""Per-unit conversions.

The library stores network quantities internally in the per-unit (p.u.)
system on a common MVA base, mirroring MATPOWER.  User-facing case data and
reported results use engineering units (MW, $/MWh) as in the paper's tables.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Default system base power, in MVA, matching MATPOWER's convention.
DEFAULT_BASE_MVA: float = 100.0


def mw_to_pu(
    value_mw: float | Sequence[float] | np.ndarray,
    base_mva: float = DEFAULT_BASE_MVA,
) -> np.ndarray:
    """Convert a power value (or array) from MW to per unit."""
    if base_mva <= 0:
        raise ValueError(f"base_mva must be positive, got {base_mva}")
    return np.asarray(value_mw, dtype=float) / float(base_mva)


def pu_to_mw(
    value_pu: float | Sequence[float] | np.ndarray,
    base_mva: float = DEFAULT_BASE_MVA,
) -> np.ndarray:
    """Convert a power value (or array) from per unit to MW."""
    if base_mva <= 0:
        raise ValueError(f"base_mva must be positive, got {base_mva}")
    return np.asarray(value_pu, dtype=float) * float(base_mva)


def dollars_per_mwh_to_per_pu_hour(cost_per_mwh: float, base_mva: float = DEFAULT_BASE_MVA) -> float:
    """Convert a marginal cost from $/MWh to $/(p.u.·h).

    Linear generation costs ``c_i G_i`` keep the same optimum regardless of
    the unit system, but the OPF solvers work in per unit internally, so the
    cost coefficients must be scaled consistently to report dollar figures
    that match the paper's tables.
    """
    if base_mva <= 0:
        raise ValueError(f"base_mva must be positive, got {base_mva}")
    return float(cost_per_mwh) * float(base_mva)


__all__ = [
    "DEFAULT_BASE_MVA",
    "mw_to_pu",
    "pu_to_mw",
    "dollars_per_mwh_to_per_pu_hour",
]
