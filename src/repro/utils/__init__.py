"""Shared utilities used across the :mod:`repro` library.

The helpers here are intentionally small and dependency free (beyond numpy /
scipy) so that every other subpackage can import them without creating
circular dependencies.
"""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.linalg import (
    column_space_projector,
    orthonormal_basis,
    residual_projector,
    is_full_column_rank,
)
from repro.utils.units import (
    mw_to_pu,
    pu_to_mw,
    DEFAULT_BASE_MVA,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "column_space_projector",
    "orthonormal_basis",
    "residual_projector",
    "is_full_column_rank",
    "mw_to_pu",
    "pu_to_mw",
    "DEFAULT_BASE_MVA",
]
