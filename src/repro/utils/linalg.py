"""Linear-algebra helpers shared by the estimation and MTD subpackages.

The moving-target-defense analysis in the paper is, at its core, a statement
about the geometry of the column spaces of measurement matrices.  The helpers
here provide numerically careful building blocks: orthonormal bases,
(weighted) projectors onto column spaces and their complements, and rank
tests with explicit tolerances.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg


def orthonormal_basis(matrix: np.ndarray, tol: float | None = None) -> np.ndarray:
    """Return an orthonormal basis of ``Col(matrix)``.

    Uses the SVD (as :func:`scipy.linalg.orth`) so that near-rank-deficient
    inputs are handled gracefully.

    Parameters
    ----------
    matrix:
        Two-dimensional array whose column space is wanted.
    tol:
        Optional singular-value cut-off.  Defaults to scipy's machine-epsilon
        based heuristic.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if tol is None:
        return scipy.linalg.orth(matrix)
    return scipy.linalg.orth(matrix, rcond=tol)


def is_full_column_rank(matrix: np.ndarray, tol: float | None = None) -> bool:
    """Check whether ``matrix`` has full column rank."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    rank = np.linalg.matrix_rank(matrix, tol=tol)
    return int(rank) == matrix.shape[1]


def column_space_projector(matrix: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Projector onto ``Col(matrix)``, optionally in a weighted inner product.

    With ``weights`` (a positive diagonal, given as a 1-D array ``w``), the
    returned matrix is the oblique projector
    ``Γ = H (Hᵀ W H)⁻¹ Hᵀ W`` used by weighted-least-squares state
    estimation; without weights it reduces to the orthogonal projector.
    """
    H = np.asarray(matrix, dtype=float)
    if H.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {H.shape}")
    if weights is None:
        W = np.eye(H.shape[0])
    else:
        w = np.asarray(weights, dtype=float).ravel()
        if w.shape[0] != H.shape[0]:
            raise ValueError(
                f"weights length {w.shape[0]} does not match measurement count {H.shape[0]}"
            )
        if np.any(w <= 0):
            raise ValueError("all weights must be strictly positive")
        W = np.diag(w)
    gram = H.T @ W @ H
    try:
        gram_inv = np.linalg.inv(gram)
    except np.linalg.LinAlgError as exc:
        raise np.linalg.LinAlgError(
            "measurement matrix is rank deficient; the network is unobservable"
        ) from exc
    return H @ gram_inv @ H.T @ W


def residual_projector(matrix: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Return ``I − Γ`` where ``Γ`` is :func:`column_space_projector`.

    Applying this matrix to a measurement vector yields the residual seen by
    the bad-data detector.
    """
    gamma = column_space_projector(matrix, weights=weights)
    return np.eye(gamma.shape[0]) - gamma


def vector_in_column_space(matrix: np.ndarray, vector: np.ndarray, tol: float = 1e-8) -> bool:
    """Test whether ``vector`` lies in ``Col(matrix)``.

    Implements the rank test of the paper's Proposition 1:
    ``rank(H') == rank([H' | v])``.  The comparison is made on the relative
    residual of the least-squares projection, which is numerically more
    stable than comparing integer ranks for nearly dependent columns.
    """
    H = np.asarray(matrix, dtype=float)
    v = np.asarray(vector, dtype=float).ravel()
    if H.shape[0] != v.shape[0]:
        raise ValueError(
            f"vector length {v.shape[0]} does not match matrix row count {H.shape[0]}"
        )
    norm_v = np.linalg.norm(v)
    if norm_v < tol:
        return True
    coeffs, *_ = np.linalg.lstsq(H, v, rcond=None)
    residual = v - H @ coeffs
    return float(np.linalg.norm(residual)) <= tol * max(1.0, norm_v)


def weighted_norm(vector: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Euclidean norm, optionally weighted by the square roots of ``weights``."""
    v = np.asarray(vector, dtype=float).ravel()
    if weights is None:
        return float(np.linalg.norm(v))
    w = np.asarray(weights, dtype=float).ravel()
    if w.shape[0] != v.shape[0]:
        raise ValueError("weights length does not match vector length")
    return float(np.sqrt(np.sum(w * v * v)))


def relative_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Return ``‖a − b‖ / max(1, ‖b‖)``, a scale-aware difference measure."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.linalg.norm(a - b) / max(1.0, np.linalg.norm(b)))


__all__ = [
    "orthonormal_basis",
    "is_full_column_rank",
    "column_space_projector",
    "residual_projector",
    "vector_in_column_space",
    "weighted_norm",
    "relative_difference",
]
