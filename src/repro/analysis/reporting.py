"""Plain-text tables for the benchmark harness.

The benchmark scripts print the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent and readable
in a terminal (no plotting dependencies are used anywhere in the library).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis → analysis)
    from repro.analysis.montecarlo import MonteCarloSummary


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows = [[_render(cell, float_format) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def format_row(cells: Sequence[str]) -> str:
        padded = [str(cell).ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = []
    if title:
        lines.append(title)
    lines.append(format_row([str(h) for h in headers]))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def format_series(
    name: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    y_values: Sequence[float],
    float_format: str = "{:.4g}",
) -> str:
    """Render an (x, y) series as a two-column table, one row per point."""
    rows = list(zip(x_values, y_values))
    return format_table([x_label, y_label], rows, title=name, float_format=float_format)


def format_summaries(
    entries: Iterable[tuple[str, "MonteCarloSummary"]],
    title: str | None = None,
    percentiles: Sequence[float] = (5.0, 95.0),
    float_format: str = "{:.4g}",
) -> str:
    """Render labelled :class:`MonteCarloSummary` rows as one table.

    Each row reports the trial count, mean, standard deviation, 95 %
    confidence half-width, median and the requested percentiles — the
    statistics the benchmarks previously recomputed ad hoc.
    """
    headers = ["scenario", "n", "mean", "std", "ci95±", "median"] + [
        f"p{p:g}" for p in percentiles
    ]
    rows = []
    for label, summary in entries:
        rows.append(
            [label, summary.n_trials, summary.mean, summary.std,
             summary.confidence_halfwidth, summary.median]
            + [summary.percentile(p) for p in percentiles]
        )
    return format_table(headers, rows, title=title, float_format=float_format)


def _render(cell: object, float_format: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)


__all__ = ["format_table", "format_series", "format_summaries"]
