"""Statistical summaries used by the benchmark harness and examples."""

from __future__ import annotations

import numpy as np
from scipy import stats


def detection_statistics(detection_probabilities: np.ndarray) -> dict[str, float]:
    """Summary statistics of a per-attack detection-probability array."""
    probs = np.asarray(detection_probabilities, dtype=float).ravel()
    if probs.size == 0:
        return {
            "count": 0.0,
            "mean": 0.0,
            "median": 0.0,
            "p10": 0.0,
            "p90": 0.0,
            "min": 0.0,
            "max": 0.0,
        }
    return {
        "count": float(probs.size),
        "mean": float(np.mean(probs)),
        "median": float(np.median(probs)),
        "p10": float(np.percentile(probs, 10)),
        "p90": float(np.percentile(probs, 90)),
        "min": float(np.min(probs)),
        "max": float(np.max(probs)),
    }


def rank_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation between two series.

    Used by the ablation benchmark that validates the paper's conjecture:
    the SPA heuristic should rank perturbations in (nearly) the same order
    as the true effectiveness metric.
    """
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError("series must have equal length")
    if x.shape[0] < 2:
        return float("nan")
    correlation, _ = stats.spearmanr(x, y)
    return float(correlation)


def summarize_series(values: np.ndarray) -> dict[str, float]:
    """Mean / spread summary of an arbitrary numeric series."""
    series = np.asarray(values, dtype=float).ravel()
    if series.size == 0:
        return {"count": 0.0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": float(series.size),
        "mean": float(np.mean(series)),
        "std": float(np.std(series)),
        "min": float(np.min(series)),
        "max": float(np.max(series)),
    }


def monotonicity_fraction(values: np.ndarray) -> float:
    """Fraction of consecutive steps that are non-decreasing.

    A value of 1.0 means the series is monotone non-decreasing; used to
    check the "effectiveness increases with the SPA" trend of Fig. 6.
    """
    series = np.asarray(values, dtype=float).ravel()
    if series.size < 2:
        return 1.0
    steps = np.diff(series)
    return float(np.mean(steps >= -1e-9))


__all__ = [
    "detection_statistics",
    "rank_correlation",
    "summarize_series",
    "monotonicity_fraction",
]
