"""Generic Monte-Carlo repetition helper.

Several of the paper's results are averages over random draws (random
attacks, random perturbations, random noise).  :func:`repeat_experiment`
standardises how such repetitions are run and summarised, with independent
per-trial random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class MonteCarloSummary:
    """Summary of a repeated scalar-valued experiment.

    Attributes
    ----------
    values:
        The per-trial outcomes.
    mean, std:
        Sample mean and standard deviation.
    confidence_halfwidth:
        Half-width of the normal-approximation 95 % confidence interval on
        the mean.
    """

    values: np.ndarray
    mean: float
    std: float
    confidence_halfwidth: float

    @property
    def n_trials(self) -> int:
        return int(self.values.size)

    @property
    def median(self) -> float:
        """Sample median of the per-trial outcomes."""
        return float(np.median(self.values)) if self.values.size else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) of the outcomes."""
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.values.size == 0:
            return 0.0
        return float(np.percentile(self.values, q))

    def confidence_interval(self) -> tuple[float, float]:
        """95 % confidence interval on the mean."""
        return (self.mean - self.confidence_halfwidth, self.mean + self.confidence_halfwidth)


def summarize_values(values: np.ndarray | list[float]) -> MonteCarloSummary:
    """Summarise an existing array of per-trial outcomes.

    Shared by :func:`repeat_experiment` and the scenario engine, which runs
    trials itself (possibly in parallel) and only needs the aggregation.
    """
    array = np.asarray(values, dtype=float).ravel()
    if array.size == 0:
        raise ValueError("cannot summarise an empty set of trial values")
    n = int(array.size)
    std = float(np.std(array, ddof=1)) if n > 1 else 0.0
    halfwidth = 1.96 * std / np.sqrt(n) if n > 1 else 0.0
    return MonteCarloSummary(
        values=array,
        mean=float(np.mean(array)),
        std=std,
        confidence_halfwidth=float(halfwidth),
    )


def repeat_experiment(
    experiment: Callable[[np.random.Generator], float],
    n_trials: int,
    seed: int | np.random.Generator | None = 0,
) -> MonteCarloSummary:
    """Run ``experiment`` ``n_trials`` times with independent random streams.

    Parameters
    ----------
    experiment:
        Callable taking a generator and returning a scalar outcome.
    n_trials:
        Number of repetitions (must be positive).
    seed:
        Base seed; trials receive statistically independent child streams.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    generators = spawn_generators(seed, n_trials)
    values = np.array([float(experiment(rng)) for rng in generators])
    return summarize_values(values)


__all__ = ["MonteCarloSummary", "repeat_experiment", "summarize_values"]
