"""Generic Monte-Carlo repetition helper.

Several of the paper's results are averages over random draws (random
attacks, random perturbations, random noise).  :func:`repeat_experiment`
standardises how such repetitions are run and summarised, with independent
per-trial random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import spawn_generators


@dataclass(frozen=True)
class MonteCarloSummary:
    """Summary of a repeated scalar-valued experiment.

    Attributes
    ----------
    values:
        The per-trial outcomes.
    mean, std:
        Sample mean and standard deviation.
    confidence_halfwidth:
        Half-width of the normal-approximation 95 % confidence interval on
        the mean.
    """

    values: np.ndarray
    mean: float
    std: float
    confidence_halfwidth: float

    @property
    def n_trials(self) -> int:
        return int(self.values.size)

    def confidence_interval(self) -> tuple[float, float]:
        """95 % confidence interval on the mean."""
        return (self.mean - self.confidence_halfwidth, self.mean + self.confidence_halfwidth)


def repeat_experiment(
    experiment: Callable[[np.random.Generator], float],
    n_trials: int,
    seed: int | np.random.Generator | None = 0,
) -> MonteCarloSummary:
    """Run ``experiment`` ``n_trials`` times with independent random streams.

    Parameters
    ----------
    experiment:
        Callable taking a generator and returning a scalar outcome.
    n_trials:
        Number of repetitions (must be positive).
    seed:
        Base seed; trials receive statistically independent child streams.
    """
    if n_trials <= 0:
        raise ValueError(f"n_trials must be positive, got {n_trials}")
    generators = spawn_generators(seed, n_trials)
    values = np.array([float(experiment(rng)) for rng in generators])
    std = float(np.std(values, ddof=1)) if n_trials > 1 else 0.0
    halfwidth = 1.96 * std / np.sqrt(n_trials) if n_trials > 1 else 0.0
    return MonteCarloSummary(
        values=values,
        mean=float(np.mean(values)),
        std=std,
        confidence_halfwidth=float(halfwidth),
    )


__all__ = ["MonteCarloSummary", "repeat_experiment"]
