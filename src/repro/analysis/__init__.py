"""Analysis helpers: Monte-Carlo drivers, metrics and plain-text reporting.

The :mod:`repro.analysis.lint` subpackage (the ``repro lint`` contract
checker) is deliberately *not* imported here: it is developer tooling —
stdlib-only AST analysis — and nothing at runtime depends on it.
"""

from repro.analysis.metrics import (
    detection_statistics,
    rank_correlation,
    summarize_series,
)
from repro.analysis.reporting import format_table, format_series
from repro.analysis.montecarlo import MonteCarloSummary, repeat_experiment

__all__ = [
    "detection_statistics",
    "rank_correlation",
    "summarize_series",
    "format_table",
    "format_series",
    "MonteCarloSummary",
    "repeat_experiment",
]
