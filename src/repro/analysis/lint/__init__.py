"""``repro lint`` — AST-based contract checker for the reproduction's invariants.

The repo's determinism and crash-safety guarantees (bit-identical
parallel/serial results, stable spec content hashes, fsync'd stores) rest
on coding conventions that plain tests cannot enforce exhaustively: one
global RNG call or unsorted directory listing in a hot path silently breaks
reproducibility.  This package turns those conventions into mechanical
rules over the Python AST (plus targeted imports for cross-checks),
surfaced as ``python -m repro lint`` and gated in CI.

Layout
------
:mod:`~repro.analysis.lint.core`
    Finding/rule model, registry, suppression comments, file walker.
:mod:`~repro.analysis.lint.rules`
    The shipped contract rules (see :data:`~repro.analysis.lint.core.REGISTRY`).
:mod:`~repro.analysis.lint.baseline`
    Committed-baseline load/match/write for grandfathered findings.
:mod:`~repro.analysis.lint.reporters`
    Text and JSON renderings of a lint run.
:mod:`~repro.analysis.lint.cli`
    The ``repro lint`` subcommand.

The package is dependency-free (stdlib only) so the gate runs anywhere the
interpreter does.
"""

from repro.analysis.lint.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.lint.core import (
    REGISTRY,
    Finding,
    FileContext,
    LintConfig,
    LintResult,
    Rule,
    lint_paths,
)

# Importing the rules module registers every shipped rule.
from repro.analysis.lint import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "REGISTRY",
    "Rule",
    "lint_paths",
    "load_baseline",
    "write_baseline",
]
