"""Committed baseline of grandfathered findings.

A baseline entry pins one *known and justified* finding so the gate can
land clean without rewriting history in a single PR.  Entries are matched
by the finding's content fingerprint (rule + module identity + enclosing
scope + source line text — never the line number), so unrelated edits that
shift code do not invalidate the baseline, while changing the offending
line itself does — the finding then resurfaces and must be re-justified or
fixed.

The file is plain JSON, hand-editable (fingerprints are recomputed from
the entry fields at load time, so humans never have to hash anything), and
multiset-matched: two identical offending lines need two entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.lint.core import Finding, LintResult
from repro.exceptions import ReproError

BASELINE_VERSION = 1

#: Default committed baseline location (repo root).
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding with its one-line justification."""

    rule: str
    module: str
    scope: str
    code: str
    justification: str = ""

    def fingerprint(self) -> str:
        """Identity matching :meth:`repro.analysis.lint.core.Finding.fingerprint`."""
        return Finding(
            rule=self.rule,
            path=self.module,
            module=self.module or None,
            line=0,
            column=0,
            scope=self.scope,
            code=self.code,
            message="",
        ).fingerprint()

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "module": self.module,
            "scope": self.scope,
            "code": self.code,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A set (multiset) of grandfathered findings."""

    entries: list[BaselineEntry] = field(default_factory=list)
    path: Path | None = None

    def apply(self, result: LintResult) -> LintResult:
        """Filter baselined findings out of ``result`` (in place).

        Matching is by fingerprint with multiplicity: each entry absorbs at
        most one finding, so a *new* duplicate of a baselined violation
        still fails the gate.
        """
        budget = Counter(entry.fingerprint() for entry in self.entries)
        kept: list[Finding] = []
        for finding in result.findings:
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                result.baselined += 1
            else:
                kept.append(finding)
        result.findings = kept
        return result

    def stale_entries(self, result_before_apply: Sequence[Finding]) -> list[BaselineEntry]:
        """Entries matching no current finding (candidates for removal)."""
        current = Counter(f.fingerprint() for f in result_before_apply)
        stale: list[BaselineEntry] = []
        for entry in self.entries:
            key = entry.fingerprint()
            if current.get(key, 0) > 0:
                current[key] -= 1
            else:
                stale.append(entry)
        return stale


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline file; a missing file is an explicit error.

    The gate must never silently pass because the baseline it expected to
    compare against was not checked out.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ReproError(f"baseline file not found: {path}") from None
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"unreadable baseline file {path}: {error}") from None
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ReproError(f"malformed baseline file {path}: missing 'entries'")
    entries: list[BaselineEntry] = []
    for raw in payload["entries"]:
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    module=str(raw.get("module", "")),
                    scope=str(raw.get("scope", "<module>")),
                    code=str(raw["code"]),
                    justification=str(raw.get("justification", "")),
                )
            )
        except (KeyError, TypeError) as error:
            raise ReproError(
                f"malformed baseline entry in {path}: {raw!r} ({error})"
            ) from None
    return Baseline(entries=entries, path=path)


def entries_from_findings(
    findings: Iterable[Finding], justification: str = "grandfathered (TODO: justify or fix)"
) -> list[BaselineEntry]:
    """Turn current findings into baseline entries (sorted, stable)."""
    entries = [
        BaselineEntry(
            rule=f.rule,
            module=f.module or Path(f.path).name,
            scope=f.scope,
            code=f.code,
            justification=justification,
        )
        for f in findings
    ]
    entries.sort(key=lambda e: (e.module, e.rule, e.scope, e.code))
    return entries


def write_baseline(path: str | Path, entries: Sequence[BaselineEntry]) -> Path:
    """Atomically write a baseline file (temp file + ``os.replace``)."""
    path = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` findings. Matched by content "
            "fingerprint (rule+module+scope+code), not line number; edit the "
            "offending line and the finding resurfaces. Keep justifications "
            "to one line."
        ),
        "entries": [entry.to_dict() for entry in entries],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".lint-baseline-", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "Baseline",
    "BaselineEntry",
    "entries_from_findings",
    "load_baseline",
    "write_baseline",
]
