"""The ``repro lint`` subcommand.

Wired into the main ``python -m repro`` parser by
:func:`repro.campaign.cli.build_parser`; kept here so the contract checker
stays a self-contained, dependency-free package.

Exit codes: 0 clean, 1 findings remain (after suppressions and, with
``--baseline``, baseline filtering), 2 on usage or internal errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    entries_from_findings,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.core import lint_paths
from repro.analysis.lint.reporters import render_json, render_rule_catalog, render_text
from repro.exceptions import ReproError

DEFAULT_LINT_TARGET = "src/repro"


def add_lint_parser(
    subparsers: Any, parents: Sequence[argparse.ArgumentParser] = ()
) -> argparse.ArgumentParser:
    """Register the ``lint`` subcommand on the root CLI."""
    lint = subparsers.add_parser(
        "lint",
        parents=list(parents),
        help="check determinism/crash-safety contracts (AST-based)",
        description=(
            "Static contract checker for the reproduction's invariants: "
            "RNG stream discipline, wall-clock hygiene, ordering "
            "determinism, spec-hash field coverage, frozen-mutation scope "
            "and durable-write discipline. See --list-rules for the "
            "catalog; suppress a finding inline with "
            "'# repro-lint: disable=RULE'."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=[DEFAULT_LINT_TARGET],
        help=f"files or directories to check (default: {DEFAULT_LINT_TARGET})",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--baseline",
        action="store_true",
        help="filter findings matched by the committed baseline file",
    )
    lint.add_argument(
        "--baseline-file",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline location (default: {DEFAULT_BASELINE_NAME})",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="machine-readable report on stdout (the CI artifact format)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, summary, rationale) and exit",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true", help="show the offending source lines"
    )
    lint.set_defaults(handler=cmd_lint)
    return lint


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler for ``repro lint``."""
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    try:
        result = lint_paths(args.paths, rule_ids=args.rules)
    except ValueError as error:  # unknown --rule id
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        entries = entries_from_findings(result.findings)
        path = write_baseline(args.baseline_file, entries)
        print(f"wrote {len(entries)} baseline entr(ies) to {path}")
        return 0
    if args.baseline:
        baseline = load_baseline(args.baseline_file)
        stale = baseline.stale_entries(result.findings)
        baseline.apply(result)
        for entry in stale:
            result.errors.append(
                f"stale baseline entry (no matching finding): "
                f"[{entry.rule}] {entry.module} :: {entry.code!r} — remove it "
                f"from {baseline.path}"
            )
    print(render_json(result) if args.json_output else render_text(result, args.verbose))
    return result.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis.lint.cli``)."""
    parser = argparse.ArgumentParser(prog="repro-lint")
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_lint_parser(subparsers)
    args = parser.parse_args(["lint", *(argv if argv is not None else sys.argv[1:])])
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
