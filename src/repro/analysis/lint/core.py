"""Finding model, rule registry, suppression comments and the lint runner.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and yields
:class:`Finding` records.  The runner (:func:`lint_paths`) walks the target
paths deterministically (sorted recursive order), parses each ``*.py`` once,
runs every selected rule, filters inline suppressions
(``# repro-lint: disable=RULE``) and returns a :class:`LintResult`.

Findings carry a content-based :meth:`~Finding.fingerprint` — a hash of the
rule id, the *module identity* (dotted import path when the file lives in a
package, file name otherwise), the enclosing scope and the stripped source
line — deliberately excluding the line number, so committed baselines
survive unrelated edits that shift code up or down.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class Finding:
    """One contract violation at a specific source location.

    Attributes
    ----------
    rule:
        Registered rule id, e.g. ``"unsorted-iteration"``.
    path:
        File path as resolved by the runner (display only; the fingerprint
        uses ``module`` so baselines are working-directory independent).
    module:
        Dotted import path when the file belongs to a package reachable
        through ``__init__.py`` chains (``"repro.engine.cache"``), else
        ``None``.
    line, column:
        1-based line and 0-based column of the offending node.
    scope:
        Dotted enclosing definition, e.g. ``"ResultCache.clear"``, or
        ``"<module>"`` at top level.
    code:
        The stripped source line (identity anchor for the fingerprint).
    message:
        Human explanation of the violation.
    """

    rule: str
    path: str
    module: str | None
    line: int
    column: int
    scope: str
    code: str
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        anchor = self.module if self.module else Path(self.path).name
        payload = "\x00".join((self.rule, anchor, self.scope, self.code))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (includes the fingerprint)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "column": self.column,
            "scope": self.scope,
            "code": self.code,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class LintConfig:
    """Tunable rule scoping.

    Attributes
    ----------
    wall_clock_allowlist:
        Dotted module prefixes where wall-clock reads (``time.time()``,
        ``datetime.now()``) are legitimate: telemetry stamps and store
        metadata.  A prefix matches the module itself and any submodule.
    durable_write_allowlist:
        Modules allowed to open files in append mode — the fsync'd append
        helpers every other durable write must route through.
    """

    wall_clock_allowlist: tuple[str, ...] = (
        "repro.telemetry",
        "repro.campaign.watch",
        "repro.campaign.store",
    )
    durable_write_allowlist: tuple[str, ...] = (
        "repro.campaign.store",
        "repro.telemetry.progress",
    )

    def module_allowed(self, module: str | None, allowlist: Sequence[str]) -> bool:
        """Whether ``module`` falls under any allowlisted prefix."""
        if module is None:
            return False
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in allowlist
        )


class FileContext:
    """One parsed source file plus the derived maps rules share.

    Everything expensive (parent links, scope names, import aliases) is
    computed lazily and cached, so a file pays only for what the selected
    rules actually use.
    """

    def __init__(
        self,
        path: Path,
        source: str,
        tree: ast.Module,
        config: LintConfig,
        module_name: str | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.module_name = module_name if module_name else _module_name_for(path)
        self._parents: dict[int, ast.AST] | None = None
        self._scopes: dict[int, str] | None = None
        self._aliases: dict[str, str] | None = None

    # ------------------------------------------------------------------
    @property
    def parents(self) -> dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` over the whole tree."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents

    @property
    def scopes(self) -> dict[int, str]:
        """Map ``id(node) -> dotted enclosing definition name``."""
        if self._scopes is None:
            scopes: dict[int, str] = {}

            def visit(node: ast.AST, stack: tuple[str, ...]) -> None:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    stack = stack + (node.name,)
                scopes[id(node)] = ".".join(stack) if stack else "<module>"
                for child in ast.iter_child_nodes(node):
                    visit(child, stack)

            visit(self.tree, ())
            self._scopes = scopes
        return self._scopes

    @property
    def aliases(self) -> dict[str, str]:
        """Imported-name bindings: local name -> dotted origin.

        ``import numpy as np`` yields ``{"np": "numpy"}``; ``from datetime
        import datetime`` yields ``{"datetime": "datetime.datetime"}``;
        ``import numpy.random`` binds the top package (``numpy``).
        """
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for item in node.names:
                        if item.asname:
                            aliases[item.asname] = item.name
                        else:
                            top = item.name.split(".")[0]
                            aliases[top] = top
                elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                    for item in node.names:
                        if item.name == "*":
                            continue
                        aliases[item.asname or item.name] = f"{node.module}.{item.name}"
            self._aliases = aliases
        return self._aliases

    # ------------------------------------------------------------------
    def resolve_chain(self, node: ast.AST) -> tuple[str, ...] | None:
        """Canonical dotted chain of a Name/Attribute expression.

        Resolves the leading name through the file's import aliases:
        ``np.random.normal`` -> ``("numpy", "random", "normal")``.  Returns
        ``None`` for expressions that are not plain attribute chains.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        origin = self.aliases.get(parts[0])
        if origin is not None:
            parts[0:1] = origin.split(".")
        return tuple(parts)

    def enclosing_function(self, node: ast.AST) -> str | None:
        """Name of the nearest enclosing function definition, if any."""
        current: ast.AST | None = self.parents.get(id(node))
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current.name
            current = self.parents.get(id(current))
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        code = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule,
            path=str(self.path),
            module=self.module_name,
            line=line,
            column=column,
            scope=self.scopes.get(id(node), "<module>"),
            code=code,
            message=message,
        )


def _module_name_for(path: Path) -> str | None:
    """Dotted import path of ``path`` by walking up ``__init__.py`` chains."""
    try:
        resolved = path.resolve()
    except OSError:  # pragma: no cover - unresolvable paths
        return None
    if resolved.suffix != ".py":
        return None
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    current = resolved.parent
    in_package = False
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        in_package = True
        current = current.parent
    if not in_package:
        return None
    return ".".join(parts) if parts else None


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
class Rule:
    """A contract rule: metadata plus a per-file check.

    Subclasses set ``id``/``summary``/``rationale`` and implement
    :meth:`check`.  Rules must be deterministic pure functions of the file
    context (plus, for hybrid rules, the imported module they cross-check).
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError
        yield  # makes every override a generator-compatible signature


#: All registered rules by id, in registration order.
REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to :data:`REGISTRY`."""
    instance = rule_cls()
    if not instance.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if instance.id in REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    REGISTRY[instance.id] = instance
    return rule_cls


# ----------------------------------------------------------------------
# Inline suppression comments
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*,\- ]+)")


def suppressions_for(source: str) -> dict[int, frozenset[str]]:
    """Parse ``# repro-lint: disable=a,b`` comments: line -> suppressed ids.

    A suppression applies to findings on its own line, and — when the
    comment stands alone on a line — to the line directly below it, so
    long statements can carry the directive above them.
    """
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        table[lineno] = table.get(lineno, frozenset()) | ids
        if line.lstrip().startswith("#"):  # comment-only line covers the next one
            table[lineno + 1] = table.get(lineno + 1, frozenset()) | ids
    return table


def is_suppressed(finding: Finding, table: Mapping[int, frozenset[str]]) -> bool:
    """Whether ``finding`` is silenced by an inline directive."""
    ids = table.get(finding.line)
    if not ids:
        return False
    return finding.rule in ids or "all" in ids or "*" in ids


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)
    rules: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings remain, 2 the run itself failed."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in deterministic sorted order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        else:
            yield path


def select_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Resolve ``rule_ids`` against the registry (all rules when ``None``)."""
    if not rule_ids:
        return list(REGISTRY.values())
    unknown = sorted(set(rule_ids) - set(REGISTRY))
    if unknown:
        known = ", ".join(sorted(REGISTRY))
        raise ValueError(f"unknown rule id(s) {unknown}; known rules: {known}")
    return [REGISTRY[rule_id] for rule_id in dict.fromkeys(rule_ids)]


def lint_paths(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    config: LintConfig | None = None,
    on_file: Callable[[Path], None] | None = None,
) -> LintResult:
    """Run the selected rules over every Python file under ``paths``."""
    config = config or LintConfig()
    rules = select_rules(rule_ids)
    result = LintResult(rules=tuple(rule.id for rule in rules))
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            result.errors.append(f"{path}: unreadable: {error}")
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            result.errors.append(f"{path}:{error.lineno}: syntax error: {error.msg}")
            continue
        result.files_checked += 1
        ctx = FileContext(path, source, tree, config)
        table = suppressions_for(source)
        for rule in rules:
            for finding in rule.check(ctx):
                if is_suppressed(finding, table):
                    result.suppressed += 1
                else:
                    result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return result


__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintResult",
    "REGISTRY",
    "Rule",
    "register",
    "iter_python_files",
    "is_suppressed",
    "lint_paths",
    "select_rules",
    "suppressions_for",
]
