"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.lint.core import REGISTRY, LintResult

LINT_REPORT_VERSION = 1


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.column}: "
            f"[{finding.rule}] {finding.message} ({finding.scope})"
        )
        if verbose and finding.code:
            lines.append(f"    {finding.code}")
    for error in result.errors:
        lines.append(f"error: {error}")
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
        f" [{result.suppressed} suppressed, {result.baselined} baselined]"
    )
    lines.append(summary if result.findings or result.errors else f"clean: {summary}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (the CI artifact format).

    Stable, sorted-key JSON so CI diffs and ``grep``/``jq`` pipelines over
    uploaded artifacts stay meaningful across runs.
    """
    payload: dict[str, Any] = {
        "version": LINT_REPORT_VERSION,
        "files_checked": result.files_checked,
        "rules": list(result.rules),
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "errors": list(result.errors),
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=1, sort_keys=True)


def render_rule_catalog() -> str:
    """The ``--list-rules`` output: id, summary and rationale per rule."""
    blocks: list[str] = []
    for rule_id in sorted(REGISTRY):
        rule = REGISTRY[rule_id]
        blocks.append(f"{rule_id}\n    {rule.summary}\n    {rule.rationale}")
    return "\n\n".join(blocks)


__all__ = ["LINT_REPORT_VERSION", "render_json", "render_rule_catalog", "render_text"]
