"""The shipped contract rules.

Each rule encodes one invariant the reproduction's results depend on; the
rationale strings double as the rule-catalog documentation rendered by
``repro lint --list-rules`` (and mirrored in ``docs/architecture.md``).

The rules are AST-first: everything a rule needs is read from the parsed
source, so they run on any file — including test fixtures that are not
importable.  The spec-hash rule additionally *imports* the module it checks
(when it can) and diffs the runtime dataclass fields against the class body
AST, catching drift that pure syntax cannot see (inherited fields, dynamic
field injection, stale exclusion lists).
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
from pathlib import Path
from typing import Iterator

from repro.analysis.lint.core import FileContext, Finding, Rule, register

# ----------------------------------------------------------------------
# 1. RNG discipline
# ----------------------------------------------------------------------

#: Explicitly seeded constructors on ``numpy.random`` that respect the
#: spawned-stream discipline (randomness still flows through the object
#: they build, which callers must thread through as a parameter).
_ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


@register
class GlobalRNGRule(Rule):
    """No global RNG state: randomness flows through ``Generator`` params."""

    id = "global-rng"
    summary = "no global numpy/stdlib RNG calls; pass Generator/SeedSequence"
    rationale = (
        "Parallel trials are bit-identical to serial ones only because every "
        "trial draws from its own seed-spawned stream. A call into the global "
        "numpy RNG (np.random.normal, np.random.seed, ...) or the stdlib "
        "`random` module reads hidden process-wide state, so results depend "
        "on import order, worker count and scheduling."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_chain(node.func)
            if chain is None:
                continue
            if len(chain) == 3 and chain[:2] == ("numpy", "random"):
                name = chain[2]
                if name in _ALLOWED_NP_RANDOM:
                    continue
                if name == "default_rng":
                    if _seeded_default_rng(node):
                        continue
                    yield ctx.finding(
                        self.id,
                        node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy — results are irreproducible; pass explicit "
                        "seed material (int/SeedSequence)",
                    )
                    continue
                yield ctx.finding(
                    self.id,
                    node,
                    f"global numpy RNG call np.random.{name}(...) bypasses the "
                    "seed-stream discipline; draw from a Generator passed in "
                    "as a parameter",
                )
            elif chain[0] == "random" and len(chain) >= 2 and _imports_stdlib_random(ctx):
                yield ctx.finding(
                    self.id,
                    node,
                    f"stdlib random.{chain[-1]}(...) uses hidden global state; "
                    "use a numpy Generator threaded through parameters",
                )


def _seeded_default_rng(node: ast.Call) -> bool:
    """Whether a ``default_rng`` call passes non-``None`` seed material."""
    if node.keywords:
        for keyword in node.keywords:
            if keyword.arg in (None, "seed"):
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is None
                )
    if not node.args:
        return False
    first = node.args[0]
    return not (isinstance(first, ast.Constant) and first.value is None)


def _imports_stdlib_random(ctx: FileContext) -> bool:
    """Whether the file binds the stdlib ``random`` module (not numpy's)."""
    return ctx.aliases.get("random") == "random" or any(
        origin == "random" or origin.startswith("random.")
        for origin in ctx.aliases.values()
    )


# ----------------------------------------------------------------------
# 2. Wall-clock hygiene
# ----------------------------------------------------------------------

#: Canonical chains that read the wall clock. Monotonic/CPU clocks
#: (perf_counter, monotonic, process_time) are deliberately exempt: they
#: measure durations and never enter hashed or stored result content.
_WALL_CLOCK_CHAINS = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("datetime", "datetime", "now"): "datetime.now()",
    ("datetime", "datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "datetime", "today"): "datetime.today()",
    ("datetime", "date", "today"): "date.today()",
}


@register
class WallClockRule(Rule):
    """Wall-clock reads only in the allowlisted telemetry/store modules."""

    id = "wall-clock"
    summary = "time.time()/datetime.now() only in telemetry/store modules"
    rationale = (
        "Scenario results are pure functions of their spec; a wall-clock "
        "read in a result-producing path makes reruns diverge and poisons "
        "content-hash-addressed caches. Timestamps belong in telemetry "
        "stamps and store metadata, which are excluded from record "
        "identity — those modules are allowlisted."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = ctx.config
        if config.module_allowed(ctx.module_name, config.wall_clock_allowlist):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_chain(node.func)
            if chain is None:
                continue
            label = _WALL_CLOCK_CHAINS.get(chain)
            if label is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{label} outside the allowlisted telemetry/store modules "
                    f"({', '.join(config.wall_clock_allowlist)}); results must "
                    "not depend on when they were computed",
                )


# ----------------------------------------------------------------------
# 3. Ordering determinism
# ----------------------------------------------------------------------

#: Filesystem enumeration methods whose order is OS/inode dependent.
_FS_METHODS = frozenset({"glob", "rglob", "iterdir"})
_FS_OS_CHAINS = {("os", "listdir"), ("os", "scandir")}


@register
class UnsortedIterationRule(Rule):
    """Filesystem listings and set iteration must be explicitly sorted."""

    id = "unsorted-iteration"
    summary = "wrap glob/iterdir/listdir and set iteration in sorted(...)"
    rationale = (
        "Path.glob/iterdir and os.listdir return entries in filesystem "
        "order, and set iteration order depends on insertion history and "
        "PYTHONHASHSEED. Feeding either into results, serialization or "
        "work scheduling makes output ordering machine-dependent — the "
        "exact bug class fixed in repro.engine.cache (ResultCache.clear/"
        "__len__ iterated an unsorted glob). Wrap the producer in "
        "sorted(...); for genuinely order-insensitive consumption, "
        "suppress with a justification comment."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = ctx.resolve_chain(node.func)
                is_fs = False
                label = ""
                if isinstance(node.func, ast.Attribute) and node.func.attr in _FS_METHODS:
                    is_fs = True
                    label = f".{node.func.attr}(...)"
                elif chain in _FS_OS_CHAINS:
                    is_fs = True
                    label = ".".join(chain) + "(...)"
                if is_fs and not self._sorted_ancestor(ctx, node):
                    yield ctx.finding(
                        self.id,
                        node,
                        f"unsorted {label}: filesystem enumeration order is "
                        "OS-dependent; wrap in sorted(...) so downstream "
                        "results are machine-independent",
                    )
            iter_node = None
            if isinstance(node, ast.For):
                iter_node = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if self._is_set_expression(generator.iter) and not self._sorted_ancestor(
                        ctx, generator.iter
                    ):
                        yield ctx.finding(
                            self.id,
                            generator.iter,
                            "iteration over a set: order depends on hashing; "
                            "wrap in sorted(...) for deterministic traversal",
                        )
                continue
            if iter_node is not None and self._is_set_expression(iter_node):
                if not self._sorted_ancestor(ctx, iter_node):
                    yield ctx.finding(
                        self.id,
                        iter_node,
                        "iteration over a set: order depends on hashing; "
                        "wrap in sorted(...) for deterministic traversal",
                    )

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    @staticmethod
    def _sorted_ancestor(ctx: FileContext, node: ast.AST) -> bool:
        """Whether ``node`` feeds (possibly via a comprehension) ``sorted``."""
        current: ast.AST | None = node
        while current is not None:
            parent = ctx.parents.get(id(current))
            if isinstance(parent, ast.Call):
                func = parent.func
                if isinstance(func, ast.Name) and func.id == "sorted":
                    return True
            if parent is None or isinstance(parent, ast.stmt):
                return False
            current = parent
        return False


# ----------------------------------------------------------------------
# 4. Frozen-spec hash discipline
# ----------------------------------------------------------------------
@register
class SpecHashFieldsRule(Rule):
    """Every spec field is hashed or declared excluded — no silent drift."""

    id = "spec-hash-fields"
    summary = "spec fields must be content-hashed or declared in exclusion lists"
    rationale = (
        "Spec content hashes key every cache, store record and campaign "
        "resume decision. A field silently excluded from the hash (or an "
        "exclusion naming a field that no longer exists) lets two different "
        "experiments collide on one hash — stale results replayed as fresh. "
        "Exclusions must be declared in _LABEL_FIELDS/_EXECUTION_FIELDS, "
        "which are cross-checked against the dataclass by importing the "
        "module and diffing its runtime fields against the AST."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        classes = [
            node for node in ctx.tree.body if isinstance(node, ast.ClassDef)
        ]
        hashed_classes = [
            cls
            for cls in classes
            if _is_dataclass(cls) and _find_method(cls, "content_hash") is not None
        ]
        if not hashed_classes:
            return
        declared, declaration_nodes = _declared_exclusions(ctx.tree)
        ast_fields: dict[str, set[str]] = {
            cls.name: _annotated_field_names(cls) for cls in hashed_classes
        }
        all_ast_fields = set().union(*ast_fields.values()) if ast_fields else set()

        # (a) ad-hoc literal exclusions inside content_hash must be declared.
        for cls in hashed_classes:
            method = _find_method(cls, "content_hash")
            assert method is not None
            for call in ast.walk(method):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "pop"
                    and call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    name = call.args[0].value
                    if name not in declared:
                        yield ctx.finding(
                            self.id,
                            call,
                            f"{cls.name}.content_hash() excludes field "
                            f"{name!r} ad hoc; declare it in _LABEL_FIELDS/"
                            "_EXECUTION_FIELDS so the exclusion is auditable",
                        )

        # (b) declared exclusions must name real fields (no stale entries).
        for name in sorted(declared):
            if name not in all_ast_fields:
                node = declaration_nodes.get(name, hashed_classes[0])
                yield ctx.finding(
                    self.id,
                    node,
                    f"declared hash exclusion {name!r} names no field of any "
                    "content-hashed spec class in this module (stale "
                    "exclusion)",
                )

        # (c) runtime cross-check: import the module and diff dataclass
        # fields against the class-body AST (catches inherited or
        # dynamically injected fields invisible to the syntax checks).
        module = _import_for_crosscheck(ctx)
        if module is None:
            return
        for cls in hashed_classes:
            runtime_cls = getattr(module, cls.name, None)
            if runtime_cls is None or not dataclasses.is_dataclass(runtime_cls):
                continue
            runtime_fields = {f.name for f in dataclasses.fields(runtime_cls)}
            hidden = sorted(runtime_fields - ast_fields[cls.name])
            if hidden:
                yield ctx.finding(
                    self.id,
                    cls,
                    f"{cls.name} has runtime dataclass field(s) {hidden} not "
                    "declared in the class body — the content hash covers "
                    "fields the AST cannot audit",
                )


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _find_method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _annotated_field_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _declared_exclusions(
    tree: ast.Module,
) -> tuple[set[str], dict[str, ast.AST]]:
    """Module-level ``_LABEL_FIELDS``/``_EXECUTION_FIELDS`` string entries."""
    declared: set[str] = set()
    nodes: dict[str, ast.AST] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in ("_LABEL_FIELDS", "_EXECUTION_FIELDS")
                and isinstance(value, (ast.Tuple, ast.List))
            ):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        declared.add(element.value)
                        nodes[element.value] = element
    return declared, nodes


def _import_for_crosscheck(ctx: FileContext):
    """Import the checked module when it is safely importable, else None.

    The imported module must resolve to the very file being linted —
    otherwise (shadowed name, fixture copy) the cross-check would diff
    against someone else's classes.
    """
    if ctx.module_name is None:
        return None
    try:
        module = importlib.import_module(ctx.module_name)
    except Exception:
        return None
    module_file = getattr(module, "__file__", None)
    if module_file is None:
        return None
    try:
        if Path(module_file).resolve() != ctx.path.resolve():
            return None
    except OSError:  # pragma: no cover - unresolvable paths
        return None
    return module


# ----------------------------------------------------------------------
# 5. Frozen-mutation scope
# ----------------------------------------------------------------------
@register
class FrozenMutationRule(Rule):
    """``object.__setattr__`` only in ``__post_init__``/``with_*`` derivations."""

    id = "frozen-mutation"
    summary = "object.__setattr__ only inside __post_init__/with_* methods"
    rationale = (
        "Frozen dataclasses are the immutability backbone: specs hash "
        "stably and networks share topology caches because nothing mutates "
        "them after construction. object.__setattr__ is the sanctioned "
        "escape hatch for field normalisation in __post_init__ and for "
        "with_*() derivation constructors building a new instance — "
        "anywhere else it is mutation of a supposedly immutable value."
    )

    _ALLOWED_EXACT = frozenset({"__post_init__", "__setstate__", "__new__"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_chain(node.func)
            if chain != ("object", "__setattr__"):
                continue
            function = ctx.enclosing_function(node)
            if function is not None and (
                function in self._ALLOWED_EXACT or function.startswith("with_")
            ):
                continue
            where = f"in {function}()" if function else "at module level"
            yield ctx.finding(
                self.id,
                node,
                f"object.__setattr__ {where}: frozen instances may only be "
                "written during __post_init__ normalisation or with_*() "
                "derivation constructors",
            )


# ----------------------------------------------------------------------
# 6. Durable-write discipline
# ----------------------------------------------------------------------
@register
class DurableWriteRule(Rule):
    """Append-mode writes only in the fsync'd durable-append helper modules."""

    id = "durable-write"
    summary = "append-mode opens only in the fsync'd store/progress helpers"
    rationale = (
        "Crash safety is proven for exactly two append paths — the campaign "
        "store segment writer and the progress stream — which write whole "
        "records, flush and fsync before continuing. Any other append-mode "
        "open can tear records or lose them on power failure; durable "
        "writes must route through those helpers (everything else should "
        "write-temp-then-os.replace)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        config = ctx.config
        if config.module_allowed(ctx.module_name, config.durable_write_allowlist):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _open_mode(node)
            if mode is not None and "a" in mode:
                yield ctx.finding(
                    self.id,
                    node,
                    f"append-mode open ({mode!r}) outside the durable-append "
                    f"helpers ({', '.join(config.durable_write_allowlist)}); "
                    "route durable writes through the fsync'd store/progress "
                    "appenders or write-temp-then-replace",
                )
                continue
            if _uses_o_append(ctx, node):
                yield ctx.finding(
                    self.id,
                    node,
                    "os.open(..., O_APPEND) outside the durable-append "
                    "helpers; route durable writes through the fsync'd "
                    "store/progress appenders",
                )


def _open_mode(node: ast.Call) -> str | None:
    """Mode string of an ``open``/``.open`` call, when statically known."""
    mode_position: int | None = None
    if isinstance(node.func, ast.Name) and node.func.id == "open":
        mode_position = 1
    elif isinstance(node.func, ast.Attribute) and node.func.attr == "open":
        mode_position = 0
    if mode_position is None:
        return None
    candidate: ast.expr | None = None
    for keyword in node.keywords:
        if keyword.arg == "mode":
            candidate = keyword.value
    if candidate is None and len(node.args) > mode_position:
        candidate = node.args[mode_position]
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate.value
    return None


def _uses_o_append(ctx: FileContext, node: ast.Call) -> bool:
    chain = ctx.resolve_chain(node.func)
    if chain != ("os", "open"):
        return False
    for arg in node.args + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if ctx.resolve_chain(sub) == ("os", "O_APPEND"):
                return True
    return False


__all__ = [
    "GlobalRNGRule",
    "WallClockRule",
    "UnsortedIterationRule",
    "SpecHashFieldsRule",
    "FrozenMutationRule",
    "DurableWriteRule",
]
