#!/usr/bin/env python3
"""Coverage ratchet: fail CI when line coverage drops below the floor.

Reads a ``coverage.json`` report (``pytest --cov=repro
--cov-report=json:coverage.json``) and compares the measured line-coverage
percentage against the committed floor below.  The floor is a *ratchet*:
it only moves up.  When the suite comfortably exceeds it, raise the floor
to just under the measured value in the same PR that added the coverage —
that way a later PR cannot silently shed tests.

The check runs in CI only (the job installs ``pytest-cov`` there); local
tier-1 runs stay dependency-free.

Usage: python scripts/check_coverage.py [coverage.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Minimum acceptable line coverage (percent) of ``src/repro``.  Raise
#: this whenever measured coverage moves meaningfully above it; never
#: lower it to make a failing build pass — remove dead code or add tests.
COVERAGE_FLOOR_PERCENT = 80.0


def main(argv: list[str]) -> int:
    report_path = Path(argv[1] if len(argv) > 1 else "coverage.json")
    if not report_path.is_file():
        print(f"error: coverage report {report_path} not found", file=sys.stderr)
        return 2
    report = json.loads(report_path.read_text())
    try:
        measured = float(report["totals"]["percent_covered"])
        n_statements = int(report["totals"]["num_statements"])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: malformed coverage report: {exc}", file=sys.stderr)
        return 2
    if n_statements == 0:
        print("error: coverage report measured zero statements "
              "(wrong --cov target?)", file=sys.stderr)
        return 2
    print(f"line coverage: {measured:.2f}% of {n_statements} statements "
          f"(floor {COVERAGE_FLOOR_PERCENT:.2f}%)")
    if measured < COVERAGE_FLOOR_PERCENT:
        print(f"error: coverage {measured:.2f}% fell below the "
              f"{COVERAGE_FLOOR_PERCENT:.2f}% floor — add tests for the new "
              "code or remove dead code; do not lower the floor",
              file=sys.stderr)
        return 1
    headroom = measured - COVERAGE_FLOOR_PERCENT
    if headroom > 5.0:
        print(f"note: {headroom:.1f} points of headroom — consider ratcheting "
              f"COVERAGE_FLOOR_PERCENT up to ~{measured - 1.0:.0f} in "
              "scripts/check_coverage.py")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
