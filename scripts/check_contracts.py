#!/usr/bin/env python
"""CI gate for the static-analysis contracts: ``repro lint`` + mypy.

Runs the two mechanical checks that protect the reproduction's
determinism/crash-safety invariants:

1. ``repro lint src/repro --baseline`` — the AST-based contract checker
   (:mod:`repro.analysis.lint`): RNG stream discipline, wall-clock hygiene,
   ordering determinism, spec-hash field coverage, frozen-mutation scope
   and durable-write discipline, filtered through the committed
   ``.repro-lint-baseline.json``.
2. ``python -m mypy`` — the type-checking gate configured in
   ``pyproject.toml`` (strict on the spec/metrics/utils modules, permissive
   elsewhere).  Skipped with a notice when mypy is not installed (the
   container ships without it; CI installs it), unless ``--require-mypy``.

Run from the repository root (CI does)::

    python scripts/check_contracts.py [--json-out lint-report.json]

``--json-out`` additionally writes the machine-readable lint report (the
same payload as ``repro lint --json``) so CI can upload it as an artifact
and regressions stay greppable from CI logs.

Exit status: 0 when every enabled check passes, 1 on lint findings or mypy
errors, 2 on infrastructure failures (missing baseline, unparseable file).
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.lint import lint_paths, load_baseline  # noqa: E402
from repro.analysis.lint.reporters import render_json, render_text  # noqa: E402
from repro.exceptions import ReproError  # noqa: E402


def run_lint(json_out: Path | None) -> int:
    """Run the contract linter against the committed baseline."""
    result = lint_paths([SRC / "repro"])
    try:
        baseline = load_baseline(ROOT / ".repro-lint-baseline.json")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stale = baseline.stale_entries(result.findings)
    baseline.apply(result)
    for entry in stale:
        result.errors.append(
            f"stale baseline entry (no matching finding): [{entry.rule}] "
            f"{entry.module} :: {entry.code!r}"
        )
    if json_out is not None:
        json_out.parent.mkdir(parents=True, exist_ok=True)
        json_out.write_text(render_json(result) + "\n", encoding="utf-8")
        print(f"lint report written to {json_out}")
    print(render_text(result))
    return result.exit_code


def run_mypy(require: bool) -> int:
    """Run mypy with the pyproject configuration, if available."""
    if importlib.util.find_spec("mypy") is None:
        message = "mypy not installed; skipping the type-checking gate"
        if require:
            print(f"error: {message} (--require-mypy set)", file=sys.stderr)
            return 2
        print(f"notice: {message}")
        return 0
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", str(ROOT / "pyproject.toml")],
        cwd=ROOT,
    )
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write the machine-readable lint report here (CI artifact)",
    )
    parser.add_argument(
        "--require-mypy",
        action="store_true",
        help="fail (instead of skipping) when mypy is not installed",
    )
    parser.add_argument(
        "--skip-mypy", action="store_true", help="run only the contract linter"
    )
    args = parser.parse_args(argv)

    lint_status = run_lint(args.json_out)
    mypy_status = 0 if args.skip_mypy else run_mypy(args.require_mypy)
    if lint_status == 0 and mypy_status == 0:
        print("static-analysis contracts: OK")
        return 0
    return max(lint_status, mypy_status)


if __name__ == "__main__":
    raise SystemExit(main())
