#!/usr/bin/env python3
"""Check that intra-repository Markdown links resolve.

Scans every ``*.md`` file in the repository (skipping ``.git`` and other
dot-directories), extracts inline links (``[text](target)``), and verifies
that each *relative* target exists on disk.  External links (``http(s)``,
``mailto:``) and pure in-page anchors (``#section``) are ignored; anchors
on relative links are stripped before the existence check.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
listed as ``file:line: target``).  Run by CI's docs job; usable locally::

    python scripts/check_md_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target "optional title")
LINK_RE = re.compile(r"\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")

#: Targets that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    """Yield every Markdown file under ``root``, skipping dot-directories."""
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def find_broken_links(root: Path) -> list[tuple[Path, int, str]]:
    """Return ``(file, line_number, target)`` for every unresolvable link."""
    broken: list[tuple[Path, int, str]] = []
    for md_file in iter_markdown_files(root):
        for line_number, line in enumerate(md_file.read_text().splitlines(), start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append((md_file, line_number, target))
    return broken


def main(argv: list[str]) -> int:
    """CLI entry point; returns the process exit status."""
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    broken = find_broken_links(root)
    checked = sum(1 for _ in iter_markdown_files(root))
    if broken:
        for md_file, line_number, target in broken:
            print(f"{md_file.relative_to(root)}:{line_number}: broken link -> {target}")
        print(f"\n{len(broken)} broken link(s) across {checked} Markdown file(s).")
        return 1
    print(f"All intra-repo Markdown links resolve ({checked} file(s) checked).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
