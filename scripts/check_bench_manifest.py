#!/usr/bin/env python
"""Check that every benchmark's BENCH_*.json artifact is present and sane.

Each ``benchmarks/bench_*.py`` module that calls ``emit_bench_json(<name>)``
is expected to have a committed ``benchmarks/BENCH_<name>.json`` timing
record next to it, so the repo always carries a machine-readable perf
baseline for every figure/table benchmark.  This script cross-references
the two by scanning the benchmark sources for emission names (no imports
needed), then validates each committed record:

* the file exists and parses as JSON;
* its ``name`` field matches the filename;
* it has a positive ``created_unix`` stamp;
* it is not *stale*: a record older than its emitting benchmark module
  predates the code that produced it and must be regenerated.

Run from the repository root (CI does)::

    python scripts/check_bench_manifest.py

Exit status is non-zero on any missing, malformed, mismatched, or stale
record.  Pass ``--allow-stale`` to downgrade staleness to a warning (for
local runs where git checkouts give sources fresh mtimes).

Performance history
-------------------
Every ``emit_bench_json`` call also appends one line to the append-only
``benchmarks/history.ndjson`` — bench name, its headline metric, the run
scale and the git sha — so the repo accumulates a perf timeline alongside
the latest snapshots.  ``--compare`` checks each current BENCH record
against the most recent *earlier* history entry of the same (name, scale)
and fails on any regression worse than 20 % (``--threshold`` to adjust);
the direction of "worse" is metric-aware (seconds/ratios should fall,
speedups/throughput should rise).

``--compare`` usage notes
-------------------------
* **Local, after rerunning a benchmark**: ``python
  scripts/check_bench_manifest.py --compare`` diffs the fresh BENCH record
  against its own committed history — run it *before* committing the new
  record to see whether the change is a regression or an improvement.
* **Against a scratch emission dir** (the CI docs job does this with
  ``REPRO_BENCH_OUT``): ``--compare --bench-dir "$RUNNER_TEMP/bench"``
  compares just-emitted smoke records against the timeline shipped in the
  checkout, catching regressions without touching the committed files.
* **Tuning sensitivity**: noisy shared runners may need ``--threshold
  0.35``; sub-20 % drifts are visible in the printed per-record deltas even
  when the check passes, so eyeball the output before raising the bar.
* **Greppable CI trail**: each compared record prints one
  ``ok/new/FAIL BENCH_<name>.json: <metric> old -> new (±x%)`` line, and
  the ``static-analysis`` job
  uploads ``lint-report.json`` (``repro lint --json``) as an artifact —
  together a CI run's perf and contract regressions are one ``grep`` away
  from the logs/artifacts, no local reproduction needed.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: File name of the append-only perf timeline next to the BENCH records.
HISTORY_NAME = "history.ndjson"

#: Default regression threshold for ``--compare`` (fractional change).
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Matches the literal first argument of an emit_bench_json(...) call.
_EMIT_RE = re.compile(r"emit_bench_json\(\s*[\"']([A-Za-z0-9_.-]+)[\"']")

#: Headline-metric preference per BENCH payload, first match wins.  Kept in
#: sync (by the tier-1 tests) with the copy in ``benchmarks/_bench_utils.py``
#: — this script must stay importable without ``repro``/``numpy``.
KEY_METRIC_CANDIDATES = (
    "overhead_ratio",
    "speedup",
    "min_speedup",
    "trials_per_second",
    "campaign_seconds",
    "incremental_seconds",
    "day_seconds",
    "sweep_seconds",
    "engine_seconds",
    "total_seconds",
    "table_seconds",
    "opf_seconds",
    "redispatch_seconds",
    "elapsed_seconds",
)


def key_metric(record: dict) -> tuple[str, float] | None:
    """The headline (metric, value) of a BENCH payload, or ``None``."""
    for candidate in KEY_METRIC_CANDIDATES:
        value = record.get(candidate)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return candidate, float(value)
    return None


def lower_is_better(metric: str) -> bool:
    """Whether a smaller value of ``metric`` is an improvement."""
    if "speedup" in metric or metric == "trials_per_second":
        return False
    return metric.endswith("_seconds") or metric.endswith("_ratio")


def history_path(bench_dir: Path = BENCH_DIR) -> Path:
    return bench_dir / HISTORY_NAME


def read_history(bench_dir: Path = BENCH_DIR) -> list[dict]:
    """Parse the history timeline, skipping torn/corrupt lines."""
    entries: list[dict] = []
    try:
        raw = history_path(bench_dir).read_bytes()
    except OSError:
        return entries
    for line in raw.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break  # torn tail from an interrupted append
        try:
            entry = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(entry, dict) and "name" in entry and "value" in entry:
            entries.append(entry)
    return entries


def compare(
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    bench_dir: Path = BENCH_DIR,
) -> int:
    """Flag current BENCH records regressing vs their last history entry.

    Each ``BENCH_<name>.json`` is compared against the most recent history
    entry of the same (name, scale) that *predates* the record (each
    emission appends itself to the history, so the record's own entry is
    skipped by timestamp).  Returns non-zero when any metric moved more
    than ``threshold`` in its worse direction.
    """
    history = read_history(bench_dir)
    if not history:
        print(f"no history at {history_path(bench_dir)}; nothing to compare")
        return 0
    regressions: list[str] = []
    compared = 0
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        name = record.get("name")
        metric = key_metric(record)
        if not name or metric is None:
            continue
        metric_name, value = metric
        created = float(record.get("created_unix", 0.0))
        scale = record.get("scale")
        earlier = [
            entry
            for entry in history
            if entry.get("name") == name
            and entry.get("scale") == scale
            and entry.get("metric") == metric_name
            and float(entry.get("created_unix", 0.0)) < created
        ]
        if not earlier:
            print(f"new     {path.name}: {metric_name}={value:g} (no prior entry)")
            continue
        baseline = float(earlier[-1]["value"])
        compared += 1
        if baseline == 0.0:
            continue
        change = (value - baseline) / abs(baseline)
        worse = change if lower_is_better(metric_name) else -change
        arrow = f"{baseline:g} -> {value:g} ({change:+.1%})"
        if worse > threshold:
            regressions.append(
                f"{path.name}: {metric_name} regressed {arrow} "
                f"(threshold {threshold:.0%})"
            )
        else:
            print(f"ok      {path.name}: {metric_name} {arrow}")
    for message in regressions:
        print(f"FAIL    {message}", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} of {compared} compared benchmarks regressed",
              file=sys.stderr)
        return 1
    print(f"\nno regressions across {compared} compared benchmark(s)")
    return 0


def expected_records(bench_dir: Path = BENCH_DIR) -> dict[str, Path]:
    """Map BENCH record name -> the benchmark module that emits it."""
    expected: dict[str, Path] = {}
    for module in sorted(bench_dir.glob("bench_*.py")):
        for name in _EMIT_RE.findall(module.read_text()):
            expected[name] = module
    return expected


def check(allow_stale: bool = False, bench_dir: Path = BENCH_DIR) -> int:
    expected = expected_records(bench_dir)
    if not expected:
        print(f"error: no emit_bench_json calls found under {bench_dir}",
              file=sys.stderr)
        return 2

    failures: list[str] = []
    warnings: list[str] = []
    for name, module in sorted(expected.items()):
        path = bench_dir / f"BENCH_{name}.json"
        if not path.exists():
            failures.append(
                f"missing {path.name} (emitted by {module.name}; run "
                f"PYTHONPATH=src python -m pytest benchmarks/{module.name} "
                "-p no:cacheprovider -o python_files='bench_*.py' "
                "-o python_functions='bench_*')"
            )
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"unreadable {path.name}: {exc}")
            continue
        if record.get("name") != name:
            failures.append(
                f"{path.name}: record name {record.get('name')!r} does not "
                f"match expected {name!r}"
            )
            continue
        created = record.get("created_unix")
        if not isinstance(created, (int, float)) or created <= 0:
            failures.append(f"{path.name}: missing/invalid created_unix stamp")
            continue
        if created < module.stat().st_mtime:
            message = (
                f"{path.name}: stale — created before {module.name} was last "
                "modified; regenerate it"
            )
            if allow_stale:
                warnings.append(message)
            else:
                failures.append(message)
            continue
        print(f"ok      BENCH_{name}.json ({module.name})")

    for message in warnings:
        print(f"warn    {message}")
    for message in failures:
        print(f"FAIL    {message}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} of {len(expected)} BENCH records failed",
              file=sys.stderr)
        return 1
    print(f"\nall {len(expected)} BENCH records present and fresh")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--allow-stale",
        action="store_true",
        help="warn (instead of fail) when a record predates its benchmark "
        "module's mtime",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="compare current BENCH records against the last history.ndjson "
        "entry of the same (name, scale) and fail on regressions",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        help="fractional regression threshold for --compare (default: 0.20)",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=BENCH_DIR,
        help="directory holding BENCH_*.json records (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    if args.compare:
        return compare(threshold=args.threshold, bench_dir=args.bench_dir)
    return check(allow_stale=args.allow_stale, bench_dir=args.bench_dir)


if __name__ == "__main__":
    raise SystemExit(main())
