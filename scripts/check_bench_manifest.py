#!/usr/bin/env python
"""Check that every benchmark's BENCH_*.json artifact is present and sane.

Each ``benchmarks/bench_*.py`` module that calls ``emit_bench_json(<name>)``
is expected to have a committed ``benchmarks/BENCH_<name>.json`` timing
record next to it, so the repo always carries a machine-readable perf
baseline for every figure/table benchmark.  This script cross-references
the two by scanning the benchmark sources for emission names (no imports
needed), then validates each committed record:

* the file exists and parses as JSON;
* its ``name`` field matches the filename;
* it has a positive ``created_unix`` stamp;
* it is not *stale*: a record older than its emitting benchmark module
  predates the code that produced it and must be regenerated.

Run from the repository root (CI does)::

    python scripts/check_bench_manifest.py

Exit status is non-zero on any missing, malformed, mismatched, or stale
record.  Pass ``--allow-stale`` to downgrade staleness to a warning (for
local runs where git checkouts give sources fresh mtimes).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: Matches the literal first argument of an emit_bench_json(...) call.
_EMIT_RE = re.compile(r"emit_bench_json\(\s*[\"']([A-Za-z0-9_.-]+)[\"']")


def expected_records() -> dict[str, Path]:
    """Map BENCH record name -> the benchmark module that emits it."""
    expected: dict[str, Path] = {}
    for module in sorted(BENCH_DIR.glob("bench_*.py")):
        for name in _EMIT_RE.findall(module.read_text()):
            expected[name] = module
    return expected


def check(allow_stale: bool = False) -> int:
    expected = expected_records()
    if not expected:
        print(f"error: no emit_bench_json calls found under {BENCH_DIR}",
              file=sys.stderr)
        return 2

    failures: list[str] = []
    warnings: list[str] = []
    for name, module in sorted(expected.items()):
        path = BENCH_DIR / f"BENCH_{name}.json"
        if not path.exists():
            failures.append(
                f"missing {path.name} (emitted by {module.name}; run "
                f"PYTHONPATH=src python -m pytest benchmarks/{module.name} "
                "-p no:cacheprovider -o python_files='bench_*.py' "
                "-o python_functions='bench_*')"
            )
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"unreadable {path.name}: {exc}")
            continue
        if record.get("name") != name:
            failures.append(
                f"{path.name}: record name {record.get('name')!r} does not "
                f"match expected {name!r}"
            )
            continue
        created = record.get("created_unix")
        if not isinstance(created, (int, float)) or created <= 0:
            failures.append(f"{path.name}: missing/invalid created_unix stamp")
            continue
        if created < module.stat().st_mtime:
            message = (
                f"{path.name}: stale — created before {module.name} was last "
                "modified; regenerate it"
            )
            if allow_stale:
                warnings.append(message)
            else:
                failures.append(message)
            continue
        print(f"ok      BENCH_{name}.json ({module.name})")

    for message in warnings:
        print(f"warn    {message}")
    for message in failures:
        print(f"FAIL    {message}", file=sys.stderr)
    if failures:
        print(f"\n{len(failures)} of {len(expected)} BENCH records failed",
              file=sys.stderr)
        return 1
    print(f"\nall {len(expected)} BENCH records present and fresh")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--allow-stale",
        action="store_true",
        help="warn (instead of fail) when a record predates its benchmark "
        "module's mtime",
    )
    args = parser.parse_args(argv)
    return check(allow_stale=args.allow_stale)


if __name__ == "__main__":
    raise SystemExit(main())
