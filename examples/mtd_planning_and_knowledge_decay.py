#!/usr/bin/env python3
"""Planning questions around the paper: device placement and update frequency.

The paper fixes the D-FACTS placement and argues qualitatively that hourly
re-perturbation keeps the defender ahead of an attacker who must re-learn the
measurement matrix from eavesdropped data.  This example uses the library's
extension modules to make both questions quantitative:

1. **Placement** — how many stealthy attack directions survive *any*
   realisable perturbation of a given D-FACTS placement, and how much better
   a greedy placement of the same number of devices does.
2. **Knowledge decay** — how many measurement snapshots the attacker needs
   after a perturbation before their re-crafted attacks bypass the bad-data
   detector again, which bounds the required MTD update interval.

Run with ``python examples/mtd_planning_and_knowledge_decay.py``.
"""

from __future__ import annotations

import numpy as np

from repro import case14, solve_dc_opf
from repro.analysis.reporting import format_table
from repro.attacks.learning import knowledge_decay_curve
from repro.estimation.measurement import MeasurementSystem
from repro.mtd.design import max_spa_perturbation
from repro.mtd.placement import greedy_placement, placement_report, stealthy_dimension


def placement_study() -> None:
    network = case14()
    rows = []
    for label, branches in (
        ("paper placement (6 devices)", None),
        ("greedy placement (6 devices)", greedy_placement(case14(), 6)),
        ("greedy placement (13 devices)", greedy_placement(case14(), 13)),
        ("every line (20 devices)", tuple(range(20))),
    ):
        report = placement_report(network, branches)
        rows.append(
            [
                label,
                len(report.branches),
                report.stealthy_dimension,
                f"{100 * report.stealthy_fraction:.0f}%",
                "yes" if report.covers_spanning_tree else "no",
            ]
        )
    print(
        format_table(
            ["placement", "#devices", "surviving attack directions",
             "share of attack space", "spans all buses"],
            rows,
            title="How much of the attack space can a placement ever cover?",
        )
    )
    print(
        "\nNote: the 14-bus system has 2(N-1) = 26 state-related directions but only\n"
        "L = 20 lines, so at least 6 attack directions survive any placement — the\n"
        "structural reason the paper's effectiveness metric saturates below 1.\n"
    )


def knowledge_decay_study() -> None:
    network = case14()
    dispatch = solve_dc_opf(network)
    # The defender has just applied a maximum-separation perturbation; the
    # attacker now starts re-learning the perturbed system from scratch.
    design = max_spa_perturbation(network, seed=0)
    perturbed_system = MeasurementSystem.for_network(
        network, reactances=design.perturbed_reactances
    )
    # A small angle jitter means the eavesdropped snapshots carry little state
    # diversity, which is what makes the attacker's re-learning slow (the
    # paper's cited subspace attacks need 500-1000 information-rich samples).
    curve = knowledge_decay_curve(
        perturbed_system,
        dispatch.angles_rad,
        snapshot_counts=[20, 50, 100, 200, 400, 800],
        angle_jitter=0.003,
        n_attacks=40,
        seed=3,
    )
    print(
        format_table(
            ["snapshots eavesdropped", "subspace error (rad)",
             "mean detection probability of re-crafted attacks"],
            [
                [int(point["n_snapshots"]), round(point["subspace_error"], 3),
                 round(point["mean_detection_probability"], 3)]
                for point in curve
            ],
            title="Attacker knowledge decay after an MTD perturbation",
        )
    )
    print(
        "\nWith SCADA snapshots arriving every few seconds, the hundreds of snapshots\n"
        "needed before re-crafted attacks slip below the detector again correspond\n"
        "to tens of minutes to hours of eavesdropping — consistent with the paper's\n"
        "argument that hourly reactance updates keep previously learned (and\n"
        "re-learned) attack strategies detectable.  The decay rate depends on how\n"
        "much state diversity the attacker observes: the less the load moves, the\n"
        "longer the defender's perturbation stays effective."
    )


def main() -> None:
    placement_study()
    knowledge_decay_study()


if __name__ == "__main__":
    main()
