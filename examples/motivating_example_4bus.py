#!/usr/bin/env python3
"""The paper's motivating example (Section IV-B) on the 4-bus system.

Reproduces the three tables of the motivating example:

* Table II — pre-perturbation branch flows, generator dispatch and OPF cost;
* Table I  — noise-free BDD residuals of two stealthy attacks under four
  single-line reactance perturbations (η = 0.2), showing that every randomly
  chosen single-line MTD leaves some attacks undetected;
* Table III — post-perturbation dispatch and OPF cost, showing that every
  perturbation carries an operational cost and that the costs differ.

Run with ``python examples/motivating_example_4bus.py``.
"""

from __future__ import annotations

import numpy as np

from repro import case4gs, solve_dc_opf, stealthy_attack
from repro.analysis.reporting import format_table
from repro.estimation.measurement import MeasurementSystem
from repro.estimation.state_estimator import WLSStateEstimator
from repro.mtd.perturbation import ReactancePerturbation

#: Relative reactance change of the motivating example.
ETA = 0.2

#: The two attack vectors of Table I (state biases on buses 2-4).
ATTACKS = {
    "Attack 1 (c = [0,1,1,1])": np.array([1.0, 1.0, 1.0]),
    "Attack 2 (c = [0,0,0,1])": np.array([0.0, 0.0, 1.0]),
}


def main() -> None:
    network = case4gs()
    baseline = solve_dc_opf(network)

    # ------------------------------------------------------------------
    # Table II: the pre-perturbation operating point.
    # ------------------------------------------------------------------
    print(
        format_table(
            ["Line 1 (MW)", "Line 2 (MW)", "Line 3 (MW)", "Line 4 (MW)",
             "Gen 1 (MW)", "Gen 2 (MW)", "Cost ($)"],
            [list(np.round(baseline.flows_mw, 2)) + list(np.round(baseline.dispatch_mw, 1))
             + [round(baseline.cost, 1)]],
            title="Table II — pre-perturbation power flows, dispatch and OPF cost",
        )
    )

    # ------------------------------------------------------------------
    # Table I: BDD residuals of the two attacks under the four MTDs.
    # ------------------------------------------------------------------
    system = MeasurementSystem.for_network(network)
    attacker_matrix = system.matrix()
    rows = []
    for name, bias in ATTACKS.items():
        attack = stealthy_attack(attacker_matrix, bias)
        residuals = []
        for line in range(network.n_branches):
            perturbation = ReactancePerturbation.single_line(network, line, ETA)
            estimator = WLSStateEstimator(
                system.with_reactances(perturbation.perturbed_reactances)
            )
            residuals.append(round(float(np.linalg.norm(estimator.attack_residual(attack))), 2))
        rows.append([name] + residuals)
    print()
    print(
        format_table(
            ["", "r'(1)", "r'(2)", "r'(3)", "r'(4)"],
            rows,
            title="Table I — noise-free BDD residuals under single-line MTDs "
                  "(0 means the attack stays stealthy)",
        )
    )

    # ------------------------------------------------------------------
    # Table III: post-perturbation dispatch and cost.
    # ------------------------------------------------------------------
    rows = []
    for line in range(network.n_branches):
        perturbation = ReactancePerturbation.single_line(network, line, ETA)
        result = solve_dc_opf(network, reactances=perturbation.perturbed_reactances)
        rows.append(
            [f"Delta-x{line + 1}",
             round(result.dispatch_mw[0], 2),
             round(result.dispatch_mw[1], 2),
             round(result.cost, 1),
             f"{100.0 * (result.cost - baseline.cost) / baseline.cost:.2f}%"]
        )
    print()
    print(
        format_table(
            ["MTD", "Gen 1 (MW)", "Gen 2 (MW)", "OPF cost ($)", "Increase"],
            rows,
            title="Table III — post-perturbation dispatch and OPF cost",
        )
    )
    print(
        "\nTakeaway: every single-line perturbation leaves one of the two attacks\n"
        "completely stealthy (a zero residual in Table I), and each one increases\n"
        "the operating cost by a different amount (Table III) — which is exactly\n"
        "why the paper formulates MTD selection as a constrained optimisation."
    )


if __name__ == "__main__":
    main()
