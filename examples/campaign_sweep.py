#!/usr/bin/env python3
"""Campaign walkthrough: a durable, sharded, resumable parameter sweep.

The script runs the shipped Fig. 7 campaign (`fig7_campaign.json`, the
paper's random-MTD experiment swept over the perturbation magnitude bound)
at a reduced budget, demonstrating the full campaign lifecycle:

1. **plan** — the definition expands into a deterministic, content-hashed,
   sharded work plan;
2. **interrupt** — the first invocation stops after two shards
   (`shard_limit`, standing in for a crash or `kill -9`);
3. **resume** — the second invocation executes *only* the missing shards,
   verified by spec-hash accounting;
4. **query** — grouped `MonteCarloSummary` roll-ups and a CSV export come
   straight from the on-disk store, bit-identical to the in-memory sweep.

Run with ``python examples/campaign_sweep.py`` (takes well under 30 s).
The same lifecycle is available from the command line::

    python -m repro campaign run examples/fig7_campaign.json \
        --store fig7.campaign --trials 2 --attacks 40
    python -m repro campaign resume --store fig7.campaign
    python -m repro campaign query --store fig7.campaign \
        --metric "eta(0.9)" --group-by mtd.max_relative_change
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.campaign import (
    CampaignDefinition,
    CampaignOrchestrator,
    plan_campaign,
    query_results,
    summarize_groups,
)
from repro.campaign.query import export_csv

#: Reduced Monte-Carlo budgets so the walkthrough stays fast.
QUICK = {"attack.n_attacks": 40, "n_trials": 3}


def main() -> None:
    definition_path = Path(__file__).resolve().parent / "fig7_campaign.json"
    definition = CampaignDefinition.from_json(definition_path.read_text())
    definition = definition.with_overrides(QUICK)

    plan = plan_campaign(definition)
    print(f"campaign {definition.name!r}: {plan.n_points} scenario points, "
          f"{len(plan.shards)} shards of <= {definition.shard_size}, "
          f"plan hash {plan.plan_hash[:12]}…")

    with tempfile.TemporaryDirectory(prefix="repro-campaign-") as tmp:
        store_dir = f"{tmp}/fig7.campaign"
        orchestrator = CampaignOrchestrator(store_dir, batch_size=8)

        # ------------------------------------------------------------------
        # 1. Interrupted run: stop after two shards (simulated crash).
        # ------------------------------------------------------------------
        first = orchestrator.run(definition, shard_limit=2)
        status = orchestrator.status()
        print(f"\ninterrupted after {len(first.executed)} scenarios: "
              f"{status.n_completed}/{status.n_items} complete, "
              f"{status.n_missing} missing")

        # ------------------------------------------------------------------
        # 2. Resume: only the missing shards execute.
        # ------------------------------------------------------------------
        second = orchestrator.resume()
        overlap = set(first.executed) & set(second.executed)
        print(f"resume executed {len(second.executed)}, skipped "
              f"{len(second.skipped)} already-stored scenarios "
              f"(re-executed overlap: {len(overlap)})")
        assert not overlap and orchestrator.status().complete

        # ------------------------------------------------------------------
        # 3. Query the store: grouped roll-ups + CSV export.
        # ------------------------------------------------------------------
        results = query_results(orchestrator.store)
        groups = summarize_groups(
            results, metric="eta(0.9)", group_by=["mtd.max_relative_change"]
        )
        print()
        print(format_table(
            ["max rel. change", "scenarios", "trials", "mean eta'(0.9)", "std"],
            [[key[0], g.n_scenarios, g.summary.n_trials,
              round(g.summary.mean, 3), round(g.summary.std, 3)]
             for g in groups for key in [g.key]],
            title="Random-MTD effectiveness vs perturbation magnitude "
                  "(paper Fig. 7, campaign form)",
        ))

        csv_path = export_csv(
            f"{tmp}/fig7.csv", results, metric="eta(0.9)",
            fields=["mtd.max_relative_change"],
        )
        print(f"\nper-scenario summary exported to {csv_path.name} "
              f"({len(results)} rows); store stats: {orchestrator.store.stats()}")


if __name__ == "__main__":
    main()
