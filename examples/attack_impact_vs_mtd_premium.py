#!/usr/bin/env python3
"""The insurance argument: attack damage versus MTD premium (Section VII-D).

The paper frames MTD as insurance: the operator pays a small, recurring
premium (the MTD operational cost) to avoid a potentially much larger loss
(the economic damage of an undetected false-data-injection attack).  This
script quantifies both sides on the IEEE 14-bus system:

* the damage distribution of undetected load-redistribution attacks of
  increasing magnitude, and
* the MTD premium required to detect (with high probability) the attacks
  crafted from pre-perturbation knowledge.

Run with ``python examples/attack_impact_vs_mtd_premium.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    EffectivenessEvaluator,
    case14,
    design_mtd_perturbation,
    mtd_operational_cost,
    solve_dc_opf,
)
from repro.analysis.reporting import format_table
from repro.attacks.impact import estimate_attack_cost_impact
from repro.utils.rng import as_generator


def main() -> None:
    network = case14()
    dispatch = solve_dc_opf(network)
    rng = as_generator(7)

    # ------------------------------------------------------------------
    # Damage of undetected attacks (load-redistribution model).
    # ------------------------------------------------------------------
    rows = []
    for magnitude in (0.002, 0.005, 0.01, 0.02):
        increases = []
        infeasible = 0
        for _ in range(40):
            bias = magnitude * rng.standard_normal(network.n_buses - 1)
            impact = estimate_attack_cost_impact(network, bias)
            if impact.feasible:
                increases.append(impact.relative_increase)
            else:
                infeasible += 1
        increases = np.array(increases) if increases else np.zeros(1)
        rows.append(
            [
                magnitude,
                f"{100 * float(np.median(increases)):.2f}%",
                f"{100 * float(np.max(increases)):.2f}%",
                infeasible,
            ]
        )
    print(
        format_table(
            ["state bias (rad, std)", "median cost damage", "worst cost damage",
             "operationally infeasible cases"],
            rows,
            title="Economic impact of undetected FDI attacks (40 random attacks per row)",
        )
    )
    print(
        "\n(An 'operationally infeasible' outcome means the falsified loads drove\n"
        "the dispatch outside the network's limits — an emergency rather than a\n"
        "quiet loss, and far more damaging than any cost increase.)\n"
    )

    # ------------------------------------------------------------------
    # The MTD premium that buys detection of pre-perturbation attacks.
    # ------------------------------------------------------------------
    evaluator = EffectivenessEvaluator(
        network, operating_angles_rad=dispatch.angles_rad, n_attacks=400, seed=2
    )
    rows = []
    for gamma in (0.10, 0.20, 0.25):
        design = design_mtd_perturbation(network, gamma_threshold=gamma, method="two-stage", seed=0)
        effectiveness = evaluator.evaluate(design.perturbed_reactances)
        cost = mtd_operational_cost(
            network, design.perturbed_reactances, baseline="reactance-opf"
        )
        rows.append(
            [
                gamma,
                round(design.achieved_spa, 3),
                round(effectiveness.eta(0.9), 2),
                f"{cost.percent_increase:.2f}%",
            ]
        )
    print(
        format_table(
            ["gamma_th (rad)", "achieved gamma", "eta'(0.9)", "MTD premium"],
            rows,
            title="MTD premium for increasing protection levels",
        )
    )
    print(
        "\nTakeaway: the recurring MTD premium is a small fraction of the hourly\n"
        "operating cost, while a single undetected attack can cause damage an\n"
        "order of magnitude larger (or an outright emergency) — the cost-benefit\n"
        "comparison the paper's Section VII-D draws."
    )


if __name__ == "__main__":
    main()
