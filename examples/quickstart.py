#!/usr/bin/env python3
"""Quickstart: moving-target defense on the IEEE 14-bus system.

The script walks through the full story of the paper in a few steps:

1. load the IEEE 14-bus benchmark with the paper's generator, D-FACTS and
   flow-limit settings and dispatch it with the DC optimal power flow;
2. let an attacker who knows the measurement matrix craft a stealthy
   false-data-injection (FDI) attack and show that the bad-data detector
   (BDD) cannot see it;
3. design an MTD reactance perturbation with the subspace-angle criterion
   (paper eq. (4)) and show that the same attack is now detected;
4. report the operational cost of the defense.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    BadDataDetector,
    EffectivenessEvaluator,
    MeasurementSystem,
    case14,
    design_mtd_perturbation,
    mtd_operational_cost,
    solve_dc_opf,
    stealthy_attack,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The grid and its normal operation.
    # ------------------------------------------------------------------
    network = case14()
    print(network.describe())
    dispatch = solve_dc_opf(network)
    print(f"OPF cost without MTD: ${dispatch.cost:,.2f}/h")
    print(f"Generator dispatch (MW): {np.round(dispatch.dispatch_mw, 1)}")

    # ------------------------------------------------------------------
    # 2. A stealthy FDI attack against the unperturbed system.
    # ------------------------------------------------------------------
    measurements = MeasurementSystem.for_network(network)
    detector = BadDataDetector(measurements)
    attacker_matrix = measurements.matrix()

    # The attacker biases three state variables (bus voltage phase angles).
    state_bias = np.zeros(measurements.n_states)
    state_bias[[2, 5, 8]] = [0.02, -0.015, 0.01]
    attack = stealthy_attack(attacker_matrix, state_bias)

    clean = measurements.measure(dispatch.angles_rad, rng=0)
    attacked = measurements.measure(dispatch.angles_rad, rng=0, attack=attack)
    print("\n--- Attack against the unperturbed grid ---")
    print(f"BDD alarm on clean measurements:    {detector.raises_alarm(clean)}")
    print(f"BDD alarm on attacked measurements: {detector.raises_alarm(attacked)}")
    print(f"Detection probability of the attack: {detector.detection_probability(attack):.4f} "
          f"(= false-positive rate {detector.false_positive_rate})")

    # ------------------------------------------------------------------
    # 3. Design an MTD perturbation and re-run the attack.
    # ------------------------------------------------------------------
    design = design_mtd_perturbation(network, gamma_threshold=0.25, method="two-stage", seed=0)
    print("\n--- MTD design (gamma_th = 0.25 rad) ---")
    print(f"Achieved subspace angle: {design.achieved_spa:.3f} rad")
    print(f"Perturbed branches: {design.perturbation.perturbed_branches}")

    perturbed_system = measurements.with_reactances(design.perturbed_reactances)
    mtd_detector = BadDataDetector(perturbed_system)
    print(f"Detection probability of the same attack after MTD: "
          f"{mtd_detector.detection_probability(attack):.4f}")

    # Ensemble view: what fraction of all stealthy attacks is now detectable?
    evaluator = EffectivenessEvaluator(
        network, operating_angles_rad=dispatch.angles_rad, n_attacks=500, seed=1
    )
    effectiveness = evaluator.evaluate(design.perturbed_reactances)
    print(f"Effectiveness eta'(0.9) over 500 random attacks: {effectiveness.eta(0.9):.2f}")

    # ------------------------------------------------------------------
    # 4. What does the defense cost?
    # ------------------------------------------------------------------
    cost = mtd_operational_cost(network, design.perturbed_reactances, baseline="reactance-opf")
    print("\n--- MTD operational cost ---")
    print(f"OPF cost without MTD: ${cost.baseline_cost:,.2f}/h")
    print(f"OPF cost with MTD:    ${cost.mtd_cost:,.2f}/h")
    print(f"MTD premium:          {cost.percent_increase:.2f}%")


if __name__ == "__main__":
    main()
