#!/usr/bin/env python3
"""Random-perturbation MTD (prior work) versus the paper's designed MTD.

Reproduces the comparison of Section VII-B (Figs. 7 and 8): random reactance
perturbations — the strategy of earlier MTD proposals — are evaluated
against the same attack ensemble as perturbations designed with the
subspace-angle criterion.  The script reports

* the spread of ``η'(δ)`` across random perturbations (high variability,
  Fig. 7),
* the fraction of the random keyspace achieving ``η'(δ) ≥ 0.9`` (small,
  Fig. 8), and
* the designed MTD's effectiveness and cost at a comparable threshold.

Run with ``python examples/random_vs_designed_mtd.py``.
"""

from __future__ import annotations

import numpy as np

from repro import (
    EffectivenessEvaluator,
    RandomMTDBaseline,
    case14,
    design_mtd_perturbation,
    mtd_operational_cost,
    solve_dc_opf,
)
from repro.analysis.reporting import format_series, format_table

N_RANDOM_SAMPLES = 100
DELTAS = [0.1, 0.3, 0.5, 0.7, 0.9]


def main() -> None:
    network = case14()
    dispatch = solve_dc_opf(network)
    evaluator = EffectivenessEvaluator(
        network, operating_angles_rad=dispatch.angles_rad, n_attacks=400, seed=1
    )

    # ------------------------------------------------------------------
    # Random keyspaces: small (2 %) perturbations as in the prior work, and
    # larger (20 %) ones to show that even big random moves are unreliable.
    # ------------------------------------------------------------------
    for label, max_change in (("2%", 0.02), ("20%", 0.20)):
        baseline = RandomMTDBaseline(network, evaluator, max_relative_change=max_change)
        keyspace = baseline.sample_keyspace(N_RANDOM_SAMPLES, seed=3)
        rows = []
        for delta in DELTAS:
            etas = keyspace.eta_values(delta)
            rows.append(
                [delta, round(float(etas.min()), 3), round(float(np.median(etas)), 3),
                 round(float(etas.max()), 3),
                 round(keyspace.fraction_meeting(delta, 0.9), 3)]
            )
        print(
            format_table(
                ["delta", "min eta'", "median eta'", "max eta'", "frac eta'>=0.9"],
                rows,
                title=f"Random MTD keyspace ({N_RANDOM_SAMPLES} samples, "
                      f"perturbations within {label} of nominal)",
            )
        )
        print()

    # ------------------------------------------------------------------
    # Designed MTD at a moderate subspace-angle threshold.
    # ------------------------------------------------------------------
    design = design_mtd_perturbation(network, gamma_threshold=0.25, method="two-stage", seed=0)
    effectiveness = evaluator.evaluate(design.perturbed_reactances)
    cost = mtd_operational_cost(network, design.perturbed_reactances, baseline="reactance-opf")
    print(
        format_series(
            "Designed MTD (gamma_th = 0.25 rad)",
            "delta",
            "eta'(delta)",
            DELTAS,
            [round(effectiveness.eta(d), 3) for d in DELTAS],
        )
    )
    print(f"\nDesigned MTD premium: {cost.percent_increase:.2f}% of the hourly OPF cost")
    print(
        "\nTakeaway: the random keyspace exhibits exactly the variability the\n"
        "paper reports — most random perturbations are ineffective, and only a\n"
        "small fraction clears eta'(0.9) >= 0.9 — while the designed perturbation\n"
        "achieves a predictable effectiveness level at a quantified cost."
    )


if __name__ == "__main__":
    main()
