#!/usr/bin/env python3
"""Random-perturbation MTD (prior work) versus the paper's designed MTD.

Reproduces the comparison of Section VII-B (Figs. 7 and 8): random reactance
perturbations — the strategy of earlier MTD proposals — are evaluated
against the same attack ensemble as perturbations designed with the
subspace-angle criterion.  The script reports

* the spread of ``η'(δ)`` across random perturbations (high variability,
  Fig. 7),
* the fraction of the random keyspace achieving ``η'(δ) ≥ 0.9`` (small,
  Fig. 8), and
* the designed MTD's effectiveness and cost at a comparable threshold.

Both experiments are expressed as declarative scenario specs and executed by
the scenario engine, which parallelises the keyspace sampling across worker
processes (results are bit-identical to a serial run).

Run with ``python examples/random_vs_designed_mtd.py``.
"""

from __future__ import annotations

from repro import (
    AttackSpec,
    GridSpec,
    MTDSpec,
    ScenarioEngine,
    ScenarioSpec,
)
from repro.analysis.reporting import format_series, format_summaries, format_table

N_RANDOM_SAMPLES = 100
DELTAS = (0.1, 0.3, 0.5, 0.7, 0.9)


def random_keyspace_spec(max_change: float) -> ScenarioSpec:
    """A keyspace of random perturbations bounded by ``max_change``."""
    return ScenarioSpec(
        name=f"random-keyspace-{max_change:g}",
        grid=GridSpec(case="ieee14", baseline="dc-opf"),
        attack=AttackSpec(n_attacks=400, seed=1),
        mtd=MTDSpec(policy="random", max_relative_change=max_change),
        n_trials=N_RANDOM_SAMPLES,
        base_seed=3,
        deltas=DELTAS,
        metric="eta(0.9)",
    )


def main() -> None:
    engine = ScenarioEngine(n_workers=4)

    # ------------------------------------------------------------------
    # Random keyspaces: small (2 %) perturbations as in the prior work, and
    # larger (20 %) ones to show that even big random moves are unreliable.
    # ------------------------------------------------------------------
    for label, max_change in (("2%", 0.02), ("20%", 0.20)):
        result = engine.run(random_keyspace_spec(max_change))
        rows = []
        for delta in DELTAS:
            summary = result.summarize(f"eta({delta:g})")
            rows.append(
                [delta, round(summary.percentile(0), 3), round(summary.median, 3),
                 round(summary.percentile(100), 3),
                 round(result.fraction_meeting(f"eta({delta:g})", 0.9), 3)]
            )
        print(
            format_table(
                ["delta", "min eta'", "median eta'", "max eta'", "frac eta'>=0.9"],
                rows,
                title=f"Random MTD keyspace ({N_RANDOM_SAMPLES} samples, "
                      f"perturbations within {label} of nominal, "
                      f"{result.n_workers} workers, {result.elapsed_seconds:.1f}s)",
            )
        )
        print()
        print(
            format_summaries(
                [(f"eta'({d:g})", result.summarize(f"eta({d:g})")) for d in (0.5, 0.9)],
                title="Keyspace summary statistics",
            )
        )
        print()

    # ------------------------------------------------------------------
    # Designed MTD at a moderate subspace-angle threshold.
    # ------------------------------------------------------------------
    designed = engine.run(
        ScenarioSpec(
            name="designed-mtd",
            grid=GridSpec(case="ieee14", baseline="dc-opf"),
            attack=AttackSpec(n_attacks=400, seed=1),
            mtd=MTDSpec(policy="designed", gamma_threshold=0.25, include_cost=True),
            deltas=DELTAS,
            metric="eta(0.9)",
        )
    )
    metrics = designed.trials[0].metrics
    print(
        format_series(
            "Designed MTD (gamma_th = 0.25 rad)",
            "delta",
            "eta'(delta)",
            list(DELTAS),
            [round(metrics[f"eta({d:g})"], 3) for d in DELTAS],
        )
    )
    print(f"\nDesigned MTD premium: {metrics['cost_increase_percent']:.2f}% of the "
          f"hourly OPF cost (achieved SPA {metrics['spa']:.3f} rad)")
    print(
        "\nTakeaway: the random keyspace exhibits exactly the variability the\n"
        "paper reports — most random perturbations are ineffective, and only a\n"
        "small fraction clears eta'(0.9) >= 0.9 — while the designed perturbation\n"
        "achieves a predictable effectiveness level at a quantified cost."
    )


if __name__ == "__main__":
    main()
