#!/usr/bin/env python3
"""Scenario engine walkthrough: a multi-case suite, run parallel and cached.

The script builds a suite spanning four grids — the paper's IEEE 14- and
30-bus cases plus the 57- and 118-bus synthetic networks from the case
registry — and runs it three ways:

1. serially, as a correctness reference;
2. on a process pool, verifying the results are **bit-identical** to the
   serial run (per-trial seed-spawned RNG streams make execution order
   irrelevant);
3. again with an on-disk cache, showing the whole suite replays from disk
   without re-executing a single trial.

Run with ``python examples/scenario_suite.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro import ScenarioEngine, scenario_suite
from repro.analysis.reporting import format_table
from repro.engine.results import merge_metric

#: Demo overrides: a reduced attack budget, but the paper's Monte-Carlo
#: detection procedure (noisy measurement draws per attack) instead of the
#: analytic shortcut — the compute-heavy path the process pool exists for.
QUICK = {
    "attack.n_attacks": 24,
    "detector.method": "monte-carlo",
    "detector.n_noise_trials": 100,
}


def main() -> None:
    suite = [spec.with_updates(QUICK) for spec in scenario_suite("scale")]
    print("Suite:", ", ".join(spec.name for spec in suite))
    print("Spec hashes:", ", ".join(spec.content_hash()[:10] for spec in suite))

    # ------------------------------------------------------------------
    # 1. Serial reference run.
    # ------------------------------------------------------------------
    serial_engine = ScenarioEngine(n_workers=1)
    serial = serial_engine.run_suite(suite)

    # ------------------------------------------------------------------
    # 2. Parallel run — must be bit-identical.
    # ------------------------------------------------------------------
    parallel_engine = ScenarioEngine(n_workers=4)
    parallel = parallel_engine.run_suite(suite)
    identical = all(a.trials == b.trials for a, b in zip(serial, parallel))
    print(f"\nParallel results identical to serial: {identical}")
    assert identical, "engine determinism contract violated"

    rows = []
    for s, p in zip(serial, parallel):
        eta = p.summarize("eta(0.9)")
        spa = p.summarize("spa")
        rows.append(
            [p.spec.name, p.spec.grid.case, p.n_trials,
             round(eta.mean, 3), round(eta.median, 3),
             round(spa.median, 4), round(spa.percentile(95), 4),
             f"{s.elapsed_seconds:.1f}s", f"{p.elapsed_seconds:.1f}s"]
        )
    print(
        format_table(
            ["scenario", "case", "trials", "mean eta'(0.9)", "median", "median spa",
             "p95 spa", "serial", "parallel"],
            rows,
            title="\nRandom-MTD Monte Carlo across grid sizes (per-trial attack "
                  "ensembles)",
        )
    )
    print(f"({os.cpu_count()} CPU(s) available — the parallel/serial ratio tracks "
          f"the core count; on one core the pool only proves determinism.)")
    pooled = merge_metric(parallel, "spa")
    print(f"Pooled achieved SPA over the whole suite: {pooled.size} trials, "
          f"max {pooled.max():.4f} rad")

    # ------------------------------------------------------------------
    # 3. Cached run — second invocation is free.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory(prefix="repro-cache-") as tmp:
        cached_engine = ScenarioEngine(cache=tmp, n_workers=4)
        first = cached_engine.run_suite(suite)
        executed_after_first = cached_engine.executed_trials
        second = cached_engine.run_suite(suite)
        print(f"\nCache at {tmp}: {cached_engine.cache.stats()}")
        print(f"Trials executed in first pass: {executed_after_first}, "
              f"in second pass: {cached_engine.executed_trials - executed_after_first}")
        all_cached = all(result.from_cache for result in second)
        replayed = all(a.trials == b.trials for a, b in zip(first, second))
        print(f"Second pass served entirely from cache: {all_cached} "
              f"(results identical: {replayed})")
        assert all_cached and replayed
        assert cached_engine.executed_trials == executed_after_first


if __name__ == "__main__":
    main()
