#!/usr/bin/env python3
"""Hourly MTD operation over a full day (paper Section VII-C, Figs. 10-11).

The IEEE 14-bus system is driven with a synthetic NYISO-like winter-day load
profile through the time-series operation engine.  At each hour the operator:

* solves the no-MTD optimal power flow (the cost baseline, carrying the
  previous hour's D-FACTS settings when re-optimising buys nothing),
* assumes the attacker's knowledge of the measurement matrix is one hour
  stale (the first hour wraps around to the previous day's last hour),
* tunes the subspace-angle threshold — by galloping bisection over the
  γ-grid — to the smallest value whose designed perturbation achieves
  ``η'(0.9) ≥ 0.9``, and
* pays the resulting operational-cost premium.

The script prints the per-hour cost premium alongside the total load
(Fig. 10) and the three subspace angles of Fig. 11.

Run with ``python examples/daily_operation.py``.  The full 24-hour day takes
a minute or two; pass an integer argument to simulate fewer hours, e.g.
``python examples/daily_operation.py 6``.  For a durable, resumable version
of the same run, use the campaign CLI instead::

    python -m repro suites run fig10 --store fig10.campaign
"""

from __future__ import annotations

import os
import sys

import numpy as np

from repro.analysis.reporting import format_table
from repro.timeseries import OperationEngine, ProfileSpec, daily_operation_spec

HOUR_LABELS = [
    "1AM", "2AM", "3AM", "4AM", "5AM", "6AM", "7AM", "8AM", "9AM", "10AM",
    "11AM", "12PM", "1PM", "2PM", "3PM", "4PM", "5PM", "6PM", "7PM", "8PM",
    "9PM", "10PM", "11PM", "12AM",
]


def main() -> None:
    n_hours = 24
    if len(sys.argv) > 1:
        n_hours = max(1, min(24, int(sys.argv[1])))

    spec = daily_operation_spec(
        name="daily-operation-example",
        case="ieee14",
        profile=ProfileSpec(hours=None if n_hours >= 24 else n_hours),
        n_attacks=300,
        seed=0,
    )
    n_workers = max(1, min(4, os.cpu_count() or 1))
    result = OperationEngine(n_workers=n_workers).run(spec, use_cache=False)

    rows = []
    for record in result:
        rows.append(
            [
                HOUR_LABELS[record.hour_of_day],
                round(record.total_load_mw, 1),
                round(record.cost_increase_percent, 2),
                round(record.gamma_threshold, 2),
                round(record.achieved_eta, 2),
                round(record.spa_attacker_vs_baseline, 3),
                round(record.spa_attacker_vs_mtd, 3),
                round(record.spa_baseline_vs_mtd, 3),
            ]
        )
    print(
        format_table(
            ["Hour", "Load (MW)", "Cost +%", "gamma_th", "eta'(0.9)",
             "g(Ht,Ht')", "g(Ht,H't')", "g(Ht',H't')"],
            rows,
            title="Daily MTD operation (Figs. 10 and 11)",
        )
    )

    costs = result.cost_increases_percent()
    loads = result.loads()
    print(f"\nPeak-load hour: {HOUR_LABELS[int(np.argmax(loads)) % 24]} "
          f"({loads.max():.0f} MW), premium {costs[int(np.argmax(loads))]:.2f}%")
    print(f"Most expensive MTD hour: {HOUR_LABELS[result.peak_cost_hour() % 24]} "
          f"({costs.max():.2f}%)")
    print(f"Average daily premium: {costs.mean():.2f}%")
    print(f"Tuning probes spent: {result.total_tuning_probes()} across "
          f"{len(result)} hours ({n_workers} worker(s)).")
    print(
        "\nAs in the paper, the premium is concentrated in the high-load hours\n"
        "(congestion forces a real redispatch), while off-peak the same level of\n"
        "protection is essentially free.  The no-MTD matrices of consecutive\n"
        "hours stay nearly aligned (small g(Ht,Ht')), which is what makes the\n"
        "attacker's one-hour-stale knowledge a good proxy for the current system."
    )


if __name__ == "__main__":
    main()
